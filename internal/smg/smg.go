// Package smg implements the stochastic-game model of MEDA biochips from
// Sec. V-C and its reduction to per-routing-job Markov decision processes
// from Sec. VI-C.
//
// The game G = (S, A1 ∪ A2, γ, s0) has states (δ, H, λ): the droplet
// rectangle, the health matrix, and whose turn it is. Player ① is the
// droplet controller with the 20 microfluidic actions of package action;
// player ② is biochip degradation, which nondeterministically lowers health
// codes (in simulation, nature plays ② by wearing microelectrodes as they
// are actuated, and by triggering injected hard faults).
//
// For synthesis the paper applies a partial-order reduction: within one
// routing job the health matrix changes negligibly, so H is frozen at its
// current value and the game collapses to an MDP over droplet rectangles
// restricted to the job's hazard bounds. Induce builds that MDP explicitly.
package smg

import (
	"fmt"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/randx"
)

// Player identifies whose turn it is in the game.
type Player int

const (
	// Controller is player ①, the droplet controller.
	Controller Player = 1
	// Environment is player ②, biochip degradation.
	Environment Player = 2
)

// String names the player.
func (p Player) String() string {
	if p == Controller {
		return "controller"
	}
	return "environment"
}

// Game binds the droplet actuation model to a biochip, exposing the two
// model fidelities of Sec. V-C: the full-information view used for strategy
// synthesis (health matrix H) and the hidden-information view used for
// simulation (degradation matrix D).
type Game struct {
	Chip *chip.Chip
	// Bounds restricts legal droplet rectangles (a routing job's hazard
	// bounds, or the whole chip).
	Bounds geom.Rect
	// MaxAspect is the aspect-ratio guard bound r (default 2).
	MaxAspect float64
}

// NewGame returns a game over the whole chip with the default guards.
func NewGame(c *chip.Chip) *Game {
	return &Game{Chip: c, Bounds: c.Bounds(), MaxAspect: action.DefaultMaxAspect}
}

// EnabledActions returns the ① actions enabled for droplet d: guard
// conditions hold and the fully-successful destination stays within Bounds
// (the droplet is forbidden from leaving the allowed area).
func (g *Game) EnabledActions(d geom.Rect) []action.Action {
	var out []action.Action
	for _, a := range action.All() {
		if !a.Enabled(d, g.MaxAspect) {
			continue
		}
		if !g.Bounds.ContainsRect(a.Apply(d)) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// OutcomesTrue returns the outcome distribution of action a on droplet d
// under the hidden degradation matrix D (simulation fidelity).
func (g *Game) OutcomesTrue(d geom.Rect, a action.Action) []action.Outcome {
	return action.Outcomes(d, a, g.Chip.TrueForceField())
}

// OutcomesObserved returns the outcome distribution under the observed b-bit
// health matrix H (synthesis fidelity).
func (g *Game) OutcomesObserved(d geom.Rect, a action.Action) []action.Outcome {
	return action.Outcomes(d, a, g.Chip.ObservedForceField())
}

// Step samples nature's resolution of action a on droplet d using the true
// degradation state, returning the next droplet rectangle. It does not
// actuate the chip; callers account for wear via chip.Actuate, which is
// player ②'s move.
func (g *Game) Step(d geom.Rect, a action.Action, src *randx.Source) geom.Rect {
	outs := g.OutcomesTrue(d, a)
	weights := make([]float64, len(outs))
	for i, o := range outs {
		weights[i] = o.P
	}
	return outs[src.Choose(weights)].Droplet
}

// ModelOptions configures the induced per-routing-job MDP.
type ModelOptions struct {
	// MaxAspect is the aspect-ratio guard bound r.
	MaxAspect float64
	// AllowMorph includes the A_↓/A_↑ shape-morphing actions (and the
	// reachable droplet shapes) in the model. The paper's Table V models
	// use fixed-shape droplets; morphing is an extension.
	AllowMorph bool
	// AllowDouble includes the double-step movements A_dd.
	AllowDouble bool
	// AllowOrdinal includes the ordinal movements A_dd'.
	AllowOrdinal bool
	// ActionCost is the reward assigned to each ① action (1 cycle).
	ActionCost float64
	// Blocked lists rectangles the droplet must not overlap (e.g. other
	// droplets resting on the array, already grown by the scheduler's
	// collision margin). Outcomes landing on a blocked rectangle are
	// treated as hazard, so synthesized strategies route around them.
	// The start rectangle itself is exempt.
	Blocked []geom.Rect
}

// DefaultModelOptions mirrors the paper's synthesis configuration: full
// movement alphabet, no morphing, unit cycle cost.
func DefaultModelOptions() ModelOptions {
	return ModelOptions{
		MaxAspect:    action.DefaultMaxAspect,
		AllowDouble:  true,
		AllowOrdinal: true,
		ActionCost:   1,
	}
}

func (o ModelOptions) allowed(a action.Action) bool {
	switch a.Class() {
	case action.Cardinal:
		return true
	case action.Double:
		return o.AllowDouble
	case action.Ordinal:
		return o.AllowOrdinal
	default:
		return o.AllowMorph
	}
}

// Model is the MDP induced from the game for one routing job, together with
// the bookkeeping needed to interpret solver output: the mapping between
// droplet rectangles and state ids, the three special states, and the
// goal/hazard label vectors of Alg. 2.
type Model struct {
	M     *mdp.MDP
	Start mdp.StateID
	// Init is the commit state: its single zero-cost choice dispatches
	// the droplet to Start, mirroring the game's initial ① turn.
	Init mdp.StateID
	// GoalSink absorbs every outcome that satisfies the goal label;
	// HazardSink absorbs every outcome that violates the hazard bounds
	// (reachable only when an enabled action can exit, which the default
	// guard construction prevents).
	GoalSink, HazardSink mdp.StateID
	Goal, Hazard         []bool

	rects []geom.Rect // position-state id → droplet rectangle
	index map[geom.Rect]mdp.StateID
}

// StateOf returns the MDP state of a droplet rectangle.
func (m *Model) StateOf(d geom.Rect) (mdp.StateID, bool) {
	s, ok := m.index[d]
	return s, ok
}

// RectOf returns the droplet rectangle of a position state; ok is false for
// the three bookkeeping states.
func (m *Model) RectOf(s mdp.StateID) (geom.Rect, bool) {
	if int(s) >= len(m.rects) {
		return geom.ZeroRect, false
	}
	return m.rects[s], true
}

// NumPositions returns the number of droplet-rectangle states (excluding the
// three bookkeeping states).
func (m *Model) NumPositions() int { return len(m.rects) }

// GoalLabel evaluates the paper's goal label for a droplet rectangle:
// (xa ≥ xag) ∧ (ya ≥ yag) ∧ (xb ≤ xbg) ∧ (yb ≤ ybg), i.e. the droplet lies
// within the goal rectangle.
func GoalLabel(d, goal geom.Rect) bool { return goal.ContainsRect(d) }

// HazardLabel evaluates the hazard label: the droplet exceeds the hazard
// bounds in any direction.
func HazardLabel(d, bounds geom.Rect) bool { return !bounds.ContainsRect(d) }

// shapes enumerates the droplet shapes reachable from (w, h) through the
// morph actions under the aspect-ratio guard, including (w, h) itself.
func shapes(w, h int, opt ModelOptions) [][2]int {
	if !opt.AllowMorph {
		return [][2]int{{w, h}}
	}
	seen := map[[2]int]bool{{w, h}: true}
	queue := [][2]int{{w, h}}
	var out [][2]int
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		out = append(out, s)
		// Probe the guard with a canonical rectangle of this shape.
		d := geom.Rect{XA: 1, YA: 1, XB: s[0], YB: s[1]}
		for _, a := range action.All() {
			if cls := a.Class(); cls != action.Widen && cls != action.Heighten {
				continue
			}
			if !a.Enabled(d, opt.MaxAspect) {
				continue
			}
			nd := a.Apply(d)
			ns := [2]int{nd.Width(), nd.Height()}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, ns)
			}
		}
	}
	return out
}

// Induce builds the per-routing-job MDP: droplet rectangles of the start
// shape (plus morph-reachable shapes if enabled) positioned within bounds,
// an init commit state, and goal/hazard sinks. field supplies the relative
// EWOD force per microelectrode — the observed field for synthesis, or the
// true field for oracle experiments.
func Induce(bounds, start, goal geom.Rect, field action.ForceField, opt ModelOptions) (*Model, error) {
	if opt.MaxAspect <= 0 { // zero value → defaults
		opt = DefaultModelOptions()
	}
	if !start.Valid() || !goal.Valid() || !bounds.Valid() {
		return nil, fmt.Errorf("smg: invalid rectangle (start %v goal %v bounds %v)", start, goal, bounds)
	}
	if !bounds.ContainsRect(start) {
		return nil, fmt.Errorf("smg: start %v outside hazard bounds %v", start, bounds)
	}
	if !bounds.ContainsRect(goal) {
		return nil, fmt.Errorf("smg: goal %v outside hazard bounds %v", goal, bounds)
	}

	m := &Model{M: mdp.New(), index: make(map[geom.Rect]mdp.StateID)}

	// Enumerate position states shape by shape, matching the reduced
	// state space S̃ ⊆ Δh of Sec. VI-C.
	for _, s := range shapes(start.Width(), start.Height(), opt) {
		w, h := s[0], s[1]
		for ya := bounds.YA; ya+h-1 <= bounds.YB; ya++ {
			for xa := bounds.XA; xa+w-1 <= bounds.XB; xa++ {
				d := geom.Rect{XA: xa, YA: ya, XB: xa + w - 1, YB: ya + h - 1}
				id := m.M.AddState()
				m.rects = append(m.rects, d)
				m.index[d] = id
			}
		}
	}
	m.Init = m.M.AddState()
	m.GoalSink = m.M.AddState()
	m.HazardSink = m.M.AddState()

	startID, ok := m.index[start]
	if !ok {
		return nil, fmt.Errorf("smg: start %v not enumerated", start)
	}
	m.Start = startID

	blockedAt := func(d geom.Rect) bool {
		if d == start {
			return false
		}
		for _, b := range opt.Blocked {
			if d.Overlaps(b) {
				return true
			}
		}
		return false
	}

	// resolve maps an outcome rectangle to its destination state, folding
	// goal satisfaction, hazard violation, and blocked regions into the
	// sinks.
	resolve := func(d geom.Rect) mdp.StateID {
		if GoalLabel(d, goal) {
			return m.GoalSink
		}
		if HazardLabel(d, bounds) || blockedAt(d) {
			return m.HazardSink
		}
		id, ok := m.index[d]
		if !ok {
			// A shape not in the enumerated set (cannot happen with
			// guard-closed shape enumeration); treat as hazard.
			return m.HazardSink
		}
		return id
	}

	for id, d := range m.rects {
		if GoalLabel(d, goal) {
			// Goal-satisfying positions are represented by the sink;
			// give the position an absorbing self-loop so the model
			// is deadlock-free if it is ever entered directly.
			m.M.AddChoice(mdp.StateID(id), -1, 0, []mdp.Transition{{To: mdp.StateID(id), P: 1}})
			continue
		}
		for _, a := range action.All() {
			if !opt.allowed(a) {
				continue
			}
			if !a.Enabled(d, opt.MaxAspect) {
				continue
			}
			if !bounds.ContainsRect(a.Apply(d)) {
				continue // forbidden: would leave the hazard bounds
			}
			outs := action.Outcomes(d, a, field)
			trs := make([]mdp.Transition, 0, len(outs))
			for _, o := range outs {
				if mdp.IsZeroProb(o.P) {
					continue
				}
				trs = append(trs, mdp.Transition{To: resolve(o.Droplet), P: o.P})
			}
			if len(trs) == 0 {
				continue
			}
			m.M.AddChoice(mdp.StateID(id), int(a), opt.ActionCost, trs)
		}
	}

	// Bookkeeping states: the init commit dispatches to the start (or the
	// goal sink, when the job starts already satisfied); sinks self-loop.
	m.M.AddChoice(m.Init, -1, 0, []mdp.Transition{{To: resolve(start), P: 1}})
	m.M.AddChoice(m.GoalSink, -1, 0, []mdp.Transition{{To: m.GoalSink, P: 1}})
	m.M.AddChoice(m.HazardSink, -1, 0, []mdp.Transition{{To: m.HazardSink, P: 1}})

	n := m.M.NumStates()
	m.Goal = make([]bool, n)
	m.Goal[m.GoalSink] = true
	m.Hazard = make([]bool, n)
	m.Hazard[m.HazardSink] = true
	return m, nil
}

// Policy converts a solved mdp.Strategy into the droplet routing strategy
// π: Δ → A of Sec. VI-C, mapping each droplet rectangle to its selected
// microfluidic action.
func (m *Model) Policy(st mdp.Strategy) map[geom.Rect]action.Action {
	out := make(map[geom.Rect]action.Action, len(m.rects))
	for id, d := range m.rects {
		act, ok := st.Action(m.M, mdp.StateID(id))
		if !ok || act < 0 {
			continue
		}
		out[d] = action.Action(act)
	}
	return out
}
