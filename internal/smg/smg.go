// Package smg implements the stochastic-game model of MEDA biochips from
// Sec. V-C and its reduction to per-routing-job Markov decision processes
// from Sec. VI-C.
//
// The game G = (S, A1 ∪ A2, γ, s0) has states (δ, H, λ): the droplet
// rectangle, the health matrix, and whose turn it is. Player ① is the
// droplet controller with the 20 microfluidic actions of package action;
// player ② is biochip degradation, which nondeterministically lowers health
// codes (in simulation, nature plays ② by wearing microelectrodes as they
// are actuated, and by triggering injected hard faults).
//
// For synthesis the paper applies a partial-order reduction: within one
// routing job the health matrix changes negligibly, so H is frozen at its
// current value and the game collapses to an MDP over droplet rectangles
// restricted to the job's hazard bounds. Induce builds that MDP explicitly.
package smg

import (
	"fmt"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/randx"
)

// Player identifies whose turn it is in the game.
type Player int

const (
	// Controller is player ①, the droplet controller.
	Controller Player = 1
	// Environment is player ②, biochip degradation.
	Environment Player = 2
)

// String names the player.
func (p Player) String() string {
	if p == Controller {
		return "controller"
	}
	return "environment"
}

// Game binds the droplet actuation model to a biochip, exposing the two
// model fidelities of Sec. V-C: the full-information view used for strategy
// synthesis (health matrix H) and the hidden-information view used for
// simulation (degradation matrix D).
type Game struct {
	Chip *chip.Chip
	// Bounds restricts legal droplet rectangles (a routing job's hazard
	// bounds, or the whole chip).
	Bounds geom.Rect
	// MaxAspect is the aspect-ratio guard bound r (default 2).
	MaxAspect float64
}

// NewGame returns a game over the whole chip with the default guards.
func NewGame(c *chip.Chip) *Game {
	return &Game{Chip: c, Bounds: c.Bounds(), MaxAspect: action.DefaultMaxAspect}
}

// EnabledActions returns the ① actions enabled for droplet d: guard
// conditions hold and the fully-successful destination stays within Bounds
// (the droplet is forbidden from leaving the allowed area).
func (g *Game) EnabledActions(d geom.Rect) []action.Action {
	var out []action.Action
	for _, a := range action.All() {
		if !a.Enabled(d, g.MaxAspect) {
			continue
		}
		if !g.Bounds.ContainsRect(a.Apply(d)) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// OutcomesTrue returns the outcome distribution of action a on droplet d
// under the hidden degradation matrix D (simulation fidelity).
func (g *Game) OutcomesTrue(d geom.Rect, a action.Action) []action.Outcome {
	return action.Outcomes(d, a, g.Chip.TrueForceField())
}

// OutcomesObserved returns the outcome distribution under the observed b-bit
// health matrix H (synthesis fidelity).
func (g *Game) OutcomesObserved(d geom.Rect, a action.Action) []action.Outcome {
	return action.Outcomes(d, a, g.Chip.ObservedForceField())
}

// Step samples nature's resolution of action a on droplet d using the true
// degradation state, returning the next droplet rectangle. It does not
// actuate the chip; callers account for wear via chip.Actuate, which is
// player ②'s move.
func (g *Game) Step(d geom.Rect, a action.Action, src *randx.Source) geom.Rect {
	outs := g.OutcomesTrue(d, a)
	weights := make([]float64, len(outs))
	for i, o := range outs {
		weights[i] = o.P
	}
	return outs[src.Choose(weights)].Droplet
}

// ModelOptions configures the induced per-routing-job MDP.
type ModelOptions struct {
	// MaxAspect is the aspect-ratio guard bound r.
	MaxAspect float64
	// AllowMorph includes the A_↓/A_↑ shape-morphing actions (and the
	// reachable droplet shapes) in the model. The paper's Table V models
	// use fixed-shape droplets; morphing is an extension.
	AllowMorph bool
	// AllowDouble includes the double-step movements A_dd.
	AllowDouble bool
	// AllowOrdinal includes the ordinal movements A_dd'.
	AllowOrdinal bool
	// ActionCost is the reward assigned to each ① action (1 cycle).
	ActionCost float64
	// Blocked lists rectangles the droplet must not overlap (e.g. other
	// droplets resting on the array, already grown by the scheduler's
	// collision margin). Outcomes landing on a blocked rectangle are
	// treated as hazard, so synthesized strategies route around them.
	// The start rectangle itself is exempt.
	Blocked []geom.Rect
}

// DefaultModelOptions mirrors the paper's synthesis configuration: full
// movement alphabet, no morphing, unit cycle cost.
func DefaultModelOptions() ModelOptions {
	return ModelOptions{
		MaxAspect:    action.DefaultMaxAspect,
		AllowDouble:  true,
		AllowOrdinal: true,
		ActionCost:   1,
	}
}

func (o ModelOptions) allowed(a action.Action) bool {
	switch a.Class() {
	case action.Cardinal:
		return true
	case action.Double:
		return o.AllowDouble
	case action.Ordinal:
		return o.AllowOrdinal
	default:
		return o.AllowMorph
	}
}

// Model is the MDP induced from the game for one routing job, together with
// the bookkeeping needed to interpret solver output: the mapping between
// droplet rectangles and state ids, the three special states, and the
// goal/hazard label vectors of Alg. 2.
type Model struct {
	M     *mdp.MDP
	Start mdp.StateID
	// Init is the commit state: its single zero-cost choice dispatches
	// the droplet to Start, mirroring the game's initial ① turn.
	Init mdp.StateID
	// GoalSink absorbs every outcome that satisfies the goal label;
	// HazardSink absorbs every outcome that violates the hazard bounds
	// (reachable only when an enabled action can exit, which the default
	// guard construction prevents).
	GoalSink, HazardSink mdp.StateID
	Goal, Hazard         []bool

	bounds geom.Rect
	spans  []span      // one per enumerated droplet shape, in id order
	rects  []geom.Rect // position-state id → droplet rectangle
}

// span records the contiguous block of state ids occupied by one droplet
// shape: positions are enumerated row-major (x fastest) within bounds, so a
// rectangle's id is recovered arithmetically instead of via a hash map.
type span struct {
	w, h int
	base mdp.StateID
}

// StateOf returns the MDP state of a droplet rectangle.
func (m *Model) StateOf(d geom.Rect) (mdp.StateID, bool) {
	if !m.bounds.ContainsRect(d) {
		return 0, false
	}
	w, h := d.Width(), d.Height()
	for _, sp := range m.spans {
		if sp.w != w || sp.h != h {
			continue
		}
		cols := m.bounds.XB - m.bounds.XA - w + 2 // positions per row
		id := sp.base + mdp.StateID((d.YA-m.bounds.YA)*cols+(d.XA-m.bounds.XA))
		return id, true
	}
	return 0, false
}

// RectOf returns the droplet rectangle of a position state; ok is false for
// the three bookkeeping states.
func (m *Model) RectOf(s mdp.StateID) (geom.Rect, bool) {
	if int(s) >= len(m.rects) {
		return geom.ZeroRect, false
	}
	return m.rects[s], true
}

// NumPositions returns the number of droplet-rectangle states (excluding the
// three bookkeeping states).
func (m *Model) NumPositions() int { return len(m.rects) }

// GoalLabel evaluates the paper's goal label for a droplet rectangle:
// (xa ≥ xag) ∧ (ya ≥ yag) ∧ (xb ≤ xbg) ∧ (yb ≤ ybg), i.e. the droplet lies
// within the goal rectangle.
func GoalLabel(d, goal geom.Rect) bool { return goal.ContainsRect(d) }

// HazardLabel evaluates the hazard label: the droplet exceeds the hazard
// bounds in any direction.
func HazardLabel(d, bounds geom.Rect) bool { return !bounds.ContainsRect(d) }

// appendShapes appends the droplet shapes reachable from (w, h) through the
// morph actions under the aspect-ratio guard, including (w, h) itself, to
// dst (used as both BFS queue and result; visited shapes are scanned in
// place instead of hashed — the reachable set is tiny).
func appendShapes(dst [][2]int, w, h int, opt ModelOptions) [][2]int {
	dst = append(dst, [2]int{w, h})
	if !opt.AllowMorph {
		return dst
	}
	seen := func(s [2]int) bool {
		for _, t := range dst {
			if t == s {
				return true
			}
		}
		return false
	}
	for head := 0; head < len(dst); head++ {
		// Probe the guard with a canonical rectangle of this shape.
		s := dst[head]
		d := geom.Rect{XA: 1, YA: 1, XB: s[0], YB: s[1]}
		for a := action.WidenNE; a <= action.HeightenSW; a++ {
			if !a.Enabled(d, opt.MaxAspect) {
				continue
			}
			nd := a.Apply(d)
			if ns := ([2]int{nd.Width(), nd.Height()}); !seen(ns) {
				dst = append(dst, ns)
			}
		}
	}
	return dst
}

// Arena builds per-routing-job MDPs with reusable memory: the CSR slabs of
// an mdp.Builder plus the model bookkeeping (rectangle table, shape spans,
// label vectors, outcome scratch) are all grown in place and recycled across
// Induce calls, so a warmed Arena induces a model of any previously seen
// size with a handful of allocations instead of tens of thousands.
//
// The *Model returned by Induce aliases the Arena's memory: it is valid only
// until the next Induce on the same Arena, must not be used from multiple
// goroutines concurrently with a rebuild, and (being Builder-built) shares
// solver scratch — do not run two solves on it concurrently. The zero value
// is ready for use.
type Arena struct {
	b      mdp.Builder
	model  Model
	shapes [][2]int
	outs   []action.Outcome
	builds int
}

// Builds returns how many models this arena has induced; any value above 1
// means slabs are being recycled.
func (ar *Arena) Builds() int { return ar.builds }

// Induce builds the per-routing-job MDP: droplet rectangles of the start
// shape (plus morph-reachable shapes if enabled) positioned within bounds,
// an init commit state, and goal/hazard sinks. field supplies the relative
// EWOD force per microelectrode — the observed field for synthesis, or the
// true field for oracle experiments.
func (ar *Arena) Induce(bounds, start, goal geom.Rect, field action.ForceField, opt ModelOptions) (*Model, error) {
	if opt.MaxAspect <= 0 { // zero value → defaults
		opt = DefaultModelOptions()
	}
	if !start.Valid() || !goal.Valid() || !bounds.Valid() {
		return nil, fmt.Errorf("smg: invalid rectangle (start %v goal %v bounds %v)", start, goal, bounds)
	}
	if !bounds.ContainsRect(start) {
		return nil, fmt.Errorf("smg: start %v outside hazard bounds %v", start, bounds)
	}
	if !bounds.ContainsRect(goal) {
		return nil, fmt.Errorf("smg: goal %v outside hazard bounds %v", goal, bounds)
	}

	ar.builds++
	ar.b.Reset()
	m := &ar.model
	*m = Model{bounds: bounds, spans: m.spans[:0], rects: m.rects[:0],
		Goal: m.Goal[:0], Hazard: m.Hazard[:0]}

	// Enumerate position states shape by shape, matching the reduced
	// state space S̃ ⊆ Δh of Sec. VI-C. Positions are laid out row-major
	// (x fastest) so StateOf can invert the enumeration arithmetically.
	ar.shapes = appendShapes(ar.shapes[:0], start.Width(), start.Height(), opt)
	for _, s := range ar.shapes {
		w, h := s[0], s[1]
		m.spans = append(m.spans, span{w: w, h: h, base: mdp.StateID(len(m.rects))})
		for ya := bounds.YA; ya+h-1 <= bounds.YB; ya++ {
			for xa := bounds.XA; xa+w-1 <= bounds.XB; xa++ {
				m.rects = append(m.rects, geom.Rect{XA: xa, YA: ya, XB: xa + w - 1, YB: ya + h - 1})
			}
		}
	}
	ar.b.AddStates(len(m.rects))
	m.Init = ar.b.AddState()
	m.GoalSink = ar.b.AddState()
	m.HazardSink = ar.b.AddState()

	startID, ok := m.StateOf(start)
	if !ok {
		return nil, fmt.Errorf("smg: start %v not enumerated", start)
	}
	m.Start = startID

	blockedAt := func(d geom.Rect) bool {
		if d == start {
			return false
		}
		for _, b := range opt.Blocked {
			if d.Overlaps(b) {
				return true
			}
		}
		return false
	}

	// resolve maps an outcome rectangle to its destination state, folding
	// goal satisfaction, hazard violation, and blocked regions into the
	// sinks.
	resolve := func(d geom.Rect) mdp.StateID {
		if GoalLabel(d, goal) {
			return m.GoalSink
		}
		if HazardLabel(d, bounds) || blockedAt(d) {
			return m.HazardSink
		}
		id, ok := m.StateOf(d)
		if !ok {
			// A shape not in the enumerated set (cannot happen with
			// guard-closed shape enumeration); treat as hazard.
			return m.HazardSink
		}
		return id
	}

	for id, d := range m.rects {
		if GoalLabel(d, goal) {
			// Goal-satisfying positions are represented by the sink;
			// give the position an absorbing self-loop so the model
			// is deadlock-free if it is ever entered directly.
			ar.b.BeginChoice(mdp.StateID(id), -1, 0)
			ar.b.Transition(mdp.StateID(id), 1)
			continue
		}
		for a := action.Action(0); a < action.NumActions; a++ {
			if !opt.allowed(a) {
				continue
			}
			if !a.Enabled(d, opt.MaxAspect) {
				continue
			}
			if !bounds.ContainsRect(a.Apply(d)) {
				continue // forbidden: would leave the hazard bounds
			}
			ar.outs = action.AppendOutcomes(ar.outs[:0], d, a, field)
			live := 0
			for _, o := range ar.outs {
				if !mdp.IsZeroProb(o.P) {
					live++
				}
			}
			if live == 0 {
				continue
			}
			ar.b.BeginChoice(mdp.StateID(id), int(a), opt.ActionCost)
			for _, o := range ar.outs {
				if mdp.IsZeroProb(o.P) {
					continue
				}
				ar.b.Transition(resolve(o.Droplet), o.P)
			}
		}
	}

	// Bookkeeping states: the init commit dispatches to the start (or the
	// goal sink, when the job starts already satisfied); sinks self-loop.
	ar.b.BeginChoice(m.Init, -1, 0)
	ar.b.Transition(resolve(start), 1)
	ar.b.BeginChoice(m.GoalSink, -1, 0)
	ar.b.Transition(m.GoalSink, 1)
	ar.b.BeginChoice(m.HazardSink, -1, 0)
	ar.b.Transition(m.HazardSink, 1)

	m.M = ar.b.Build()
	n := m.M.NumStates()
	m.Goal = growBools(m.Goal, n)
	m.Goal[m.GoalSink] = true
	m.Hazard = growBools(m.Hazard, n)
	m.Hazard[m.HazardSink] = true
	return m, nil
}

// growBools resizes a label slab to n cleared entries, reusing the backing
// array when possible.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// Induce builds the per-routing-job MDP on a fresh arena; the result owns
// its memory (nothing recycles it) and so has no aliasing caveats. Callers
// inducing many models back to back should hold an Arena and use its Induce
// method instead.
func Induce(bounds, start, goal geom.Rect, field action.ForceField, opt ModelOptions) (*Model, error) {
	return new(Arena).Induce(bounds, start, goal, field, opt)
}

// Policy converts a solved mdp.Strategy into the droplet routing strategy
// π: Δ → A of Sec. VI-C, mapping each droplet rectangle to its selected
// microfluidic action.
func (m *Model) Policy(st mdp.Strategy) map[geom.Rect]action.Action {
	out := make(map[geom.Rect]action.Action, len(m.rects))
	for id, d := range m.rects {
		act, ok := st.Action(m.M, mdp.StateID(id))
		if !ok || act < 0 {
			continue
		}
		out[d] = action.Action(act)
	}
	return out
}
