package smg

import (
	"math"
	"testing"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/randx"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func healthyField(x, y int) float64 { return 1 }

// TestStateCountMatchesTableV: the induced model has
// (Wh−w+1)·(Hh−h+1) + 3 states, reproducing the #States column of Table V.
func TestStateCountMatchesTableV(t *testing.T) {
	cases := []struct {
		area, droplet, wantStates int
	}{
		{10, 3, 67}, {10, 4, 52}, {10, 5, 39}, {10, 6, 28},
		{20, 3, 327}, {20, 4, 292}, {20, 5, 259}, {20, 6, 228},
		{30, 3, 787}, {30, 4, 732}, {30, 5, 679}, {30, 6, 628},
	}
	for _, c := range cases {
		bounds := rect(1, 1, c.area, c.area)
		start := rect(1, 1, c.droplet, c.droplet)
		goal := rect(c.area-c.droplet+1, c.area-c.droplet+1, c.area, c.area)
		m, err := Induce(bounds, start, goal, healthyField, DefaultModelOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got := m.M.NumStates(); got != c.wantStates {
			t.Errorf("area %d droplet %d: #states = %d, want %d", c.area, c.droplet, got, c.wantStates)
		}
		if err := m.M.Validate(); err != nil {
			t.Errorf("area %d droplet %d: %v", c.area, c.droplet, err)
		}
	}
}

func TestInduceValidation(t *testing.T) {
	bounds := rect(1, 1, 10, 10)
	ok3 := rect(1, 1, 3, 3)
	cases := []struct {
		start, goal geom.Rect
	}{
		{rect(9, 9, 11, 11), ok3},                    // start outside bounds
		{ok3, rect(9, 9, 11, 11)},                    // goal outside bounds
		{geom.Rect{XA: 5, YA: 5, XB: 3, YB: 3}, ok3}, // invalid start
	}
	for i, c := range cases {
		if _, err := Induce(bounds, c.start, c.goal, healthyField, DefaultModelOptions()); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

func TestLabels(t *testing.T) {
	goal := rect(5, 5, 9, 9)
	if !GoalLabel(rect(6, 6, 8, 8), goal) {
		t.Error("droplet inside goal must satisfy goal label")
	}
	if GoalLabel(rect(4, 6, 6, 8), goal) {
		t.Error("droplet partially outside goal must not satisfy goal")
	}
	bounds := rect(1, 1, 10, 10)
	if HazardLabel(rect(2, 2, 4, 4), bounds) {
		t.Error("in-bounds droplet must not be hazardous")
	}
	if !HazardLabel(rect(8, 8, 11, 11), bounds) {
		t.Error("out-of-bounds droplet must be hazardous")
	}
}

// TestHealthyRoutingExpectedCycles: on a fully healthy chip a 3×3 droplet
// with ordinal moves crosses a diagonal of 7 cells in exactly 7 cycles.
func TestHealthyRoutingExpectedCycles(t *testing.T) {
	bounds := rect(1, 1, 10, 10)
	start := rect(1, 1, 3, 3)
	goal := rect(8, 8, 10, 10)
	m, err := Induce(bounds, start, goal, healthyField, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[m.Start]; math.Abs(got-7) > 1e-6 {
		t.Errorf("expected cycles = %v, want 7", got)
	}
	// And from the init state, identical (its dispatch is free).
	if got := res.Values[m.Init]; math.Abs(got-7) > 1e-6 {
		t.Errorf("init expected cycles = %v, want 7", got)
	}
}

// TestDoubleStepsHalveTravel: a 4×4 droplet moving straight east 8 cells
// uses double steps: 4 cycles.
func TestDoubleStepsHalveTravel(t *testing.T) {
	bounds := rect(1, 1, 20, 6)
	start := rect(1, 1, 4, 4)
	goal := rect(9, 1, 12, 4)
	m, err := Induce(bounds, start, goal, healthyField, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[m.Start]; math.Abs(got-4) > 1e-6 {
		t.Errorf("expected cycles = %v, want 4 (double steps)", got)
	}
	// Without double steps it takes 8 cycles.
	opt := DefaultModelOptions()
	opt.AllowDouble = false
	m2, err := Induce(bounds, start, goal, healthyField, opt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.M.MinExpectedReward(m2.Goal, m2.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Values[m2.Start]; math.Abs(got-8) > 1e-6 {
		t.Errorf("single-step cycles = %v, want 8", got)
	}
}

// TestDegradedCellRoutesAround: a wall of dead microelectrodes between start
// and goal forces a detour; the synthesized policy must avoid it and the
// expected cycles must exceed the straight-line distance.
func TestDegradedCellRoutesAround(t *testing.T) {
	bounds := rect(1, 1, 12, 9)
	start := rect(1, 4, 3, 6)
	goal := rect(10, 4, 12, 6)
	// Dead column at x=6, rows 1..7 (gap at the top rows 8..9).
	field := func(x, y int) float64 {
		if x == 6 && y <= 7 {
			return 0
		}
		return 1
	}
	m, err := Induce(bounds, start, goal, field, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct := 7.0 / 2 // 7 east with double steps would be 3.5→4 cycles
	got := res.Values[m.Start]
	if math.IsInf(got, 1) {
		t.Fatal("detour exists; Rmin must be finite")
	}
	if got <= direct {
		t.Errorf("expected cycles %v should exceed unobstructed %v", got, direct)
	}
	// Execute the policy greedily under full determinism of the healthy
	// cells: it must reach the goal without crossing the dead column with
	// a failing frontier. We simulate by always taking the successful
	// outcome (the field is 0/1 so enabled moves either always succeed or
	// never do; the policy must only use always-succeeding moves).
	policy := m.Policy(res.Strategy)
	d := start
	for step := 0; step < 100; step++ {
		if GoalLabel(d, goal) {
			return
		}
		a, ok := policy[d]
		if !ok {
			t.Fatalf("policy undefined at %v", d)
		}
		outs := action.Outcomes(d, a, field)
		best := outs[0]
		for _, o := range outs {
			if o.P > best.P {
				best = o
			}
		}
		if best.Droplet == d {
			t.Fatalf("policy stalls at %v with %v", d, a)
		}
		d = best.Droplet
	}
	t.Fatal("policy did not reach goal in 100 steps")
}

// TestPmaxQueryOnDeadWall: when the dead wall fully separates start from
// goal, Pmax = 0 and Rmin = ∞.
func TestPmaxQueryOnDeadWall(t *testing.T) {
	bounds := rect(1, 1, 12, 6)
	start := rect(1, 2, 3, 4)
	goal := rect(10, 2, 12, 4)
	field := func(x, y int) float64 {
		if x == 6 {
			return 0 // full-height dead column
		}
		return 1
	}
	m, err := Induce(bounds, start, goal, field, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.M.MaxReachProb(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Values[m.Start] != 0 {
		t.Errorf("Pmax = %v, want 0 (wall)", p.Values[m.Start])
	}
	r, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Values[m.Start], 1) {
		t.Errorf("Rmin = %v, want +Inf (wall)", r.Values[m.Start])
	}
}

// TestMorphShapesEnumerated: with morphing enabled and r=2, a 4×4 droplet
// reaches shapes 5×3 and 3×5 (and no others).
func TestMorphShapesEnumerated(t *testing.T) {
	opt := DefaultModelOptions()
	opt.AllowMorph = true
	bounds := rect(1, 1, 10, 10)
	start := rect(1, 1, 4, 4)
	goal := rect(7, 7, 10, 10)
	m, err := Induce(bounds, start, goal, healthyField, opt)
	if err != nil {
		t.Fatal(err)
	}
	// positions: 4×4 → 49, 5×3 → 6·8 = 48, 3×5 → 8·6 = 48; + 3 sinks.
	want := 49 + 48 + 48 + 3
	if got := m.M.NumStates(); got != want {
		t.Errorf("#states = %d, want %d", got, want)
	}
	if err := m.M.Validate(); err != nil {
		t.Fatal(err)
	}
	// The morphing model must still route correctly.
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Values[m.Start], 1) {
		t.Error("morph model cannot reach goal")
	}
}

// TestMorphSpeedsUpNarrowCorridor: rows 4..5 of a long corridor are dead, so
// a 4×4 droplet's eastern frontier always includes a dead cell (p = 3/4 per
// step), while a morphed 5×3 droplet crosses in the healthy rows 1..3 at
// full force. The morphing model must be strictly faster. (A partial dead
// frontier can never block a droplet outright under the mean-force
// semantics of Sec. V-B, so morphing buys speed, not feasibility, here.)
func TestMorphSpeedsUpNarrowCorridor(t *testing.T) {
	bounds := rect(1, 1, 15, 5)
	start := rect(1, 1, 4, 4)
	goal := rect(11, 1, 15, 5) // tolerant goal region fits both shapes
	field := func(x, y int) float64 {
		if x >= 6 && x <= 12 && y >= 4 {
			return 0
		}
		return 1
	}
	noMorph, err := Induce(bounds, start, goal, field, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	rNo, err := noMorph.M.MinExpectedReward(noMorph.Goal, noMorph.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultModelOptions()
	opt.AllowMorph = true
	withMorph, err := Induce(bounds, start, goal, field, opt)
	if err != nil {
		t.Fatal(err)
	}
	rYes, err := withMorph.M.MinExpectedReward(withMorph.Goal, withMorph.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vNo, vYes := rNo.Values[noMorph.Start], rYes.Values[withMorph.Start]
	if math.IsInf(vNo, 1) || math.IsInf(vYes, 1) {
		t.Fatalf("both models must route: noMorph=%v morph=%v", vNo, vYes)
	}
	if !(vYes < vNo) {
		t.Errorf("morphing should be faster: morph=%v vs noMorph=%v", vYes, vNo)
	}
}

func TestGoalStartingPosition(t *testing.T) {
	bounds := rect(1, 1, 10, 10)
	start := rect(4, 4, 6, 6)
	m, err := Induce(bounds, start, start, healthyField, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[m.Init]; got != 0 {
		t.Errorf("already-at-goal expected cycles = %v, want 0", got)
	}
}

func TestGameEnabledActions(t *testing.T) {
	c, err := chip.New(chip.Default(), randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(c)
	// Center droplet 4×4: all 12 moves enabled plus heighten/widen per
	// guards (r=2 allows both for 4×4).
	center := rect(20, 10, 23, 13)
	acts := g.EnabledActions(center)
	if len(acts) != 20 {
		t.Errorf("center 4×4: %d actions enabled, want all 20", len(acts))
	}
	// Corner droplet: western/southern moves disabled by bounds.
	corner := rect(1, 1, 4, 4)
	for _, a := range g.EnabledActions(corner) {
		nd := a.Apply(corner)
		if !c.Bounds().ContainsRect(nd) {
			t.Errorf("%v enabled at corner but exits the chip", a)
		}
	}
}

func TestGameStepDistribution(t *testing.T) {
	c, err := chip.New(chip.Default(), randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(c)
	src := randx.New(3)
	d := rect(10, 10, 13, 13)
	// On a fresh chip all forces are 1: aE always moves east.
	for i := 0; i < 20; i++ {
		nd := g.Step(d, action.MoveE, src)
		if nd != d.Translate(1, 0) {
			t.Fatalf("step on healthy chip = %v", nd)
		}
	}
	// Outcomes under observation match truth on a fresh chip.
	to := g.OutcomesTrue(d, action.MoveNE)
	oo := g.OutcomesObserved(d, action.MoveNE)
	if len(to) != len(oo) {
		t.Fatal("outcome sets differ")
	}
	for i := range to {
		if math.Abs(to[i].P-oo[i].P) > 1e-12 {
			t.Errorf("outcome %d: true %v vs observed %v", i, to[i].P, oo[i].P)
		}
	}
}

func TestPolicyMapping(t *testing.T) {
	bounds := rect(1, 1, 8, 8)
	start := rect(1, 1, 3, 3)
	goal := rect(6, 6, 8, 8)
	m, err := Induce(bounds, start, goal, healthyField, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	policy := m.Policy(res.Strategy)
	if len(policy) == 0 {
		t.Fatal("empty policy")
	}
	a, ok := policy[start]
	if !ok {
		t.Fatal("policy undefined at start")
	}
	if a != action.MoveNE {
		t.Errorf("optimal first action = %v, want aNE", a)
	}
}

func TestPlayerString(t *testing.T) {
	if Controller.String() != "controller" || Environment.String() != "environment" {
		t.Error("player names wrong")
	}
}

func TestRectOfStateRoundTrip(t *testing.T) {
	bounds := rect(1, 1, 6, 6)
	start := rect(1, 1, 2, 2)
	goal := rect(5, 5, 6, 6)
	m, err := Induce(bounds, start, goal, healthyField, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumPositions(); i++ {
		d, ok := m.RectOf(mdp.StateID(i))
		if !ok {
			t.Fatalf("RectOf(%d) failed", i)
		}
		id, ok := m.StateOf(d)
		if !ok || id != mdp.StateID(i) {
			t.Fatalf("StateOf(RectOf(%d)) = %d", i, id)
		}
	}
	if _, ok := m.RectOf(m.GoalSink); ok {
		t.Error("sink must not map to a rectangle")
	}
}
