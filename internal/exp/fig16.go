package exp

import (
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/stats"
)

// Fig16Config configures the fault-injection evaluation of Sec. VII-C.
type Fig16Config struct {
	Seed uint64
	Chip chip.Config
	// FaultFraction is the fraction of MCs that are faulty (hard-failing).
	FaultFraction float64
	// FailAfterLo/Hi bound the random actuation count at which a faulty
	// MC dies.
	FailAfterLo, FailAfterHi int
	// Trials is the number of chips per configuration; each trial runs
	// until Executions successes or the first abort (k > KMax).
	Trials     int
	Executions int
	KMax       int
	Assays     []assay.Benchmark
	Area       int
}

// DefaultFig16Config mirrors Sec. VII-C (k_max = 1000, five executions per
// trial, uniform and clustered fault modes) at a laptop-scale trial count.
func DefaultFig16Config(seed uint64) Fig16Config {
	return Fig16Config{
		Seed:          seed,
		Chip:          chip.Default(),
		FaultFraction: 0.12,
		FailAfterLo:   10,
		FailAfterHi:   120,
		Trials:        8,
		Executions:    5,
		KMax:          1000,
		Assays:        assay.EvaluationBenchmarks,
		Area:          16,
	}
}

// Fig16Row is one bar of Fig. 16: the mean (± sample SD) number of cycles
// per execution for an assay under a router and fault-injection mode, plus
// the mean number of executions to first failure.
type Fig16Row struct {
	Assay     string
	Router    string
	FaultMode string
	Mean      float64
	SD        float64
	// CILo/CIHi bound the mean with a 95% percentile-bootstrap interval
	// (cycle counts are far from normal: aborts pile up at KMax).
	CILo, CIHi float64
	// Executions is the total number of executions behind the statistics.
	Executions int
	// MeanExecsToFirstFailure averages the 1-based index of the first
	// aborted execution; trials with no failure contribute
	// Executions+1 (a lower bound, as in "greater than five").
	MeanExecsToFirstFailure float64
}

// Fig16 runs the fault-injection comparison: both routers, both fault
// modes, all assays, identical chips per (trial, mode) across routers.
func Fig16(cfg Fig16Config) ([]Fig16Row, error) {
	modes := []degrade.FaultMode{degrade.FaultUniform, degrade.FaultClustered}
	var out []Fig16Row
	for _, bench := range cfg.Assays {
		for _, mode := range modes {
			for _, router := range []string{"baseline", "adaptive"} {
				router := router
				trialResults := make([]sim.TrialResult, cfg.Trials)
				err := parallelTrials(cfg.Trials, func(trial int) error {
					tc := sim.TrialConfig{
						Sim:        baseSimConfig(),
						Chip:       cfg.Chip,
						Executions: cfg.Executions,
						Area:       cfg.Area,
						// Identical chip per (assay, mode, trial) across
						// routers: a fair head-to-head.
						Seed: randx.New(cfg.Seed).Split(bench.String()).
							Split(mode.String()).SplitN("trial", trial).Seed(),
					}
					tc.Sim.KMax = cfg.KMax
					tc.Chip.Faults = degrade.FaultPlan{
						Mode:        mode,
						Fraction:    cfg.FaultFraction,
						FailAfterLo: cfg.FailAfterLo,
						FailAfterHi: cfg.FailAfterHi,
					}
					res, err := sim.RunTrial(tc, bench, func() sched.Router { return newRouter(router) })
					if err != nil {
						return err
					}
					trialResults[trial] = res
					return nil
				})
				if err != nil {
					return nil, err
				}
				var cycles []float64
				var firstFailures []float64
				for _, res := range trialResults {
					for _, c := range res.Cycles {
						cycles = append(cycles, float64(c))
					}
					if res.FirstFailure == 0 {
						firstFailures = append(firstFailures, float64(cfg.Executions+1))
					} else {
						firstFailures = append(firstFailures, float64(res.FirstFailure))
					}
				}
				mean, sd := stats.MeanStd(cycles)
				lo, hi, err := stats.BootstrapCI(cycles, 0.95, 2000, randx.New(cfg.Seed).Split("boot"))
				if err != nil {
					return nil, err
				}
				out = append(out, Fig16Row{
					Assay: bench.String(), Router: router, FaultMode: mode.String(),
					Mean: mean, SD: sd, CILo: lo, CIHi: hi, Executions: len(cycles),
					MeanExecsToFirstFailure: stats.Mean(firstFailures),
				})
			}
		}
	}
	return out, nil
}

// RenderFig16 writes the fault-injection table.
func RenderFig16(w io.Writer, rows []Fig16Row) {
	fprintf(w, "Fig. 16 — mean cycles per execution under fault injection (± sample SD)\n")
	tw := newTable(w)
	fprintf(tw, "assay\tfaults\trouter\tmean k\tSD\t95%% CI\texecs\tmean execs to 1st failure\n")
	for _, r := range rows {
		fprintf(tw, "%s\t%s\t%s\t%.0f\t%.0f\t[%.0f, %.0f]\t%d\t%.1f\n",
			r.Assay, r.FaultMode, r.Router, r.Mean, r.SD, r.CILo, r.CIHi, r.Executions, r.MeanExecsToFirstFailure)
	}
	tw.Flush()
}
