package exp

import (
	"fmt"
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
)

// Fig15Config configures the probability-of-successful-completion sweep of
// Sec. VII-B.
type Fig15Config struct {
	Seed uint64
	// Chip is the biochip configuration; the paper uses the fabricated
	// 30×60 array with c ~ U(200,500) and τ ~ U(0.5,0.9).
	Chip chip.Config
	// KMaxSweep lists the time-to-result limits (operational cycles).
	KMaxSweep []int
	// Trials is the number of independent chips per (assay, k_max) point.
	Trials int
	// Executions is the number of consecutive executions per chip
	// (biochip reuse; the paper runs multiple assays per CMOS chip).
	Executions int
	// Assays are the protocols swept.
	Assays []assay.Benchmark
	// Area is the dispensed droplet area.
	Area int
}

// DefaultFig15Config mirrors the paper's setup at a laptop-scale trial
// count. Executions = 20 reflects the premise of Sec. VII-B: CMOS biochips
// are reused for as many bioassay runs as possible, so the probability of
// success is estimated over a chip's whole service life.
func DefaultFig15Config(seed uint64) Fig15Config {
	return Fig15Config{
		Seed:       seed,
		Chip:       chip.Default(),
		KMaxSweep:  []int{250, 300, 350, 400, 500, 600, 700},
		Trials:     5,
		Executions: 20,
		Assays:     assay.EvaluationBenchmarks,
		Area:       16,
	}
}

// Fig15Point is one curve sample: the probability that an execution of the
// assay completes within KMax cycles, under one router.
type Fig15Point struct {
	Assay  string
	Router string
	KMax   int
	PoS    float64
	// Runs is the number of executions behind the estimate.
	Runs int
}

// Fig15 sweeps k_max for both routers over all assays. For fairness, the
// baseline and adaptive routers face identical chips (same per-trial seeds).
func Fig15(cfg Fig15Config) ([]Fig15Point, error) {
	var out []Fig15Point
	for _, bench := range cfg.Assays {
		plan, err := compilePlan(cfg.Chip, bench, cfg.Area)
		if err != nil {
			return nil, err
		}
		for _, kmax := range cfg.KMaxSweep {
			for _, router := range []string{"baseline", "adaptive"} {
				type tally struct{ successes, runs int }
				tallies := make([]tally, cfg.Trials)
				kmax, router := kmax, router
				err := parallelTrials(cfg.Trials, func(trial int) error {
					src := randx.New(cfg.Seed).
						Split(bench.String()).SplitN("trial", trial)
					c, err := chip.New(cfg.Chip, src.Split("chip"))
					if err != nil {
						return err
					}
					simCfg := baseSimConfig()
					simCfg.KMax = kmax
					runner := sim.NewRunner(simCfg, c, newRouter(router), src.Split("sim"))
					for e := 0; e < cfg.Executions; e++ {
						exec, err := runner.Execute(plan)
						if err != nil {
							return err
						}
						tallies[trial].runs++
						if exec.Success {
							tallies[trial].successes++
						} else {
							// The chip is too degraded (or the budget too
							// small); later executions on this chip
							// cannot do better.
							tallies[trial].runs += cfg.Executions - e - 1
							break
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				successes, runs := 0, 0
				for _, t := range tallies {
					successes += t.successes
					runs += t.runs
				}
				out = append(out, Fig15Point{
					Assay: bench.String(), Router: router, KMax: kmax,
					PoS: float64(successes) / float64(runs), Runs: runs,
				})
			}
		}
	}
	return out, nil
}

func compilePlan(cc chip.Config, bench assay.Benchmark, area int) (*route.Plan, error) {
	a := bench.Build(assay.Layout{W: cc.W, H: cc.H}, area)
	plan, err := route.Compile(a, cc.W, cc.H)
	if err != nil {
		return nil, fmt.Errorf("exp: %v: %w", bench, err)
	}
	return plan, nil
}

func newRouter(name string) sched.Router {
	if name == "adaptive" {
		return adaptiveRouter()
	}
	return sched.NewBaseline()
}

// RenderFig15 writes the PoS curves.
func RenderFig15(w io.Writer, points []Fig15Point) {
	fprintf(w, "Fig. 15 — probability of successful completion vs k_max\n")
	tw := newTable(w)
	// Collect k_max values in order.
	var kmaxes []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.KMax] {
			seen[p.KMax] = true
			kmaxes = append(kmaxes, p.KMax)
		}
	}
	fprintf(tw, "assay\trouter")
	for _, k := range kmaxes {
		fprintf(tw, "\tk≤%d", k)
	}
	fprintf(tw, "\n")
	type key struct{ assay, router string }
	rows := map[key]map[int]float64{}
	var order []key
	for _, p := range points {
		k := key{p.Assay, p.Router}
		if _, ok := rows[k]; !ok {
			rows[k] = map[int]float64{}
			order = append(order, k)
		}
		rows[k][p.KMax] = p.PoS
	}
	for _, k := range order {
		fprintf(tw, "%s\t%s", k.assay, k.router)
		for _, km := range kmaxes {
			fprintf(tw, "\t%.2f", rows[k][km])
		}
		fprintf(tw, "\n")
	}
	tw.Flush()
}
