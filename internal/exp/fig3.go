package exp

import (
	"fmt"
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/stats"
)

// Fig3Config configures the actuation-correlation study of Sec. III-C.
type Fig3Config struct {
	Seed uint64
	// W, H are the biochip dimensions (the paper uses 60×30).
	W, H int
	// Sides are the droplet side lengths studied (3..6).
	Sides []int
	// Distances are the Manhattan distances studied (1..5).
	Distances []int
	// Assays are the protocols executed (ChIP, In-Vitro, Gene-Expression).
	Assays []assay.Benchmark
	// MaxPairs caps the number of MC pairs sampled per distance.
	MaxPairs int
}

// DefaultFig3Config mirrors the paper's setup.
func DefaultFig3Config(seed uint64) Fig3Config {
	return Fig3Config{
		Seed: seed,
		W:    60, H: 30,
		Sides:     []int{3, 4, 5, 6},
		Distances: []int{1, 2, 3, 4, 5},
		Assays:    assay.CorrelationBenchmarks,
		MaxPairs:  4000,
	}
}

// Fig3Point is one data point of Fig. 3: the mean correlation coefficient of
// actuation vectors between MC pairs at a Manhattan distance, for one assay
// and droplet size.
type Fig3Point struct {
	Assay       string
	Side        int
	Distance    int
	Correlation float64
	Pairs       int
}

// Fig3 simulates each bioassay at each droplet size, records the Boolean
// actuation vector A_ij of every microelectrode, and computes the mean
// Pearson correlation between pairs of MCs grouped by Manhattan distance.
func Fig3(cfg Fig3Config) ([]Fig3Point, error) {
	src := randx.New(cfg.Seed)
	var out []Fig3Point
	for _, bench := range cfg.Assays {
		for _, side := range cfg.Sides {
			vectors, err := recordActuations(cfg, bench, side, src.Split(bench.String()).SplitN("side", side))
			if err != nil {
				return nil, fmt.Errorf("exp: fig3 %v side %d: %w", bench, side, err)
			}
			for _, d := range cfg.Distances {
				corr, pairs := meanCorrelationAtDistance(vectors, cfg.W, cfg.H, d, cfg.MaxPairs,
					src.Split("pairs").SplitN("d", d))
				out = append(out, Fig3Point{
					Assay: bench.String(), Side: side, Distance: d,
					Correlation: corr, Pairs: pairs,
				})
			}
		}
	}
	return out, nil
}

// recordActuations runs one execution on a robust chip and returns the
// per-cell actuation bit vectors (indexed (y−1)*W + (x−1)).
func recordActuations(cfg Fig3Config, bench assay.Benchmark, side int, src *randx.Source) ([][]bool, error) {
	chipCfg := chip.Config{
		W: cfg.W, H: cfg.H, HealthBits: 2,
		// Robust microelectrodes: the correlation study observes actuation
		// patterns, not failures.
		Normal: degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000},
	}
	c, err := chip.New(chipCfg, src.Split("chip"))
	if err != nil {
		return nil, err
	}
	a := bench.Build(assay.Layout{W: cfg.W, H: cfg.H}, side*side)
	plan, err := route.Compile(a, cfg.W, cfg.H)
	if err != nil {
		return nil, err
	}
	runner := sim.NewRunner(baseSimConfig(), c, sched.NewBaseline(), src.Split("sim"))
	vectors := make([][]bool, cfg.W*cfg.H)
	runner.Hook = func(k int, patterns []geom.Rect) {
		row := make([]bool, cfg.W*cfg.H)
		for _, p := range patterns {
			clipped, ok := p.Intersect(geom.Rect{XA: 1, YA: 1, XB: cfg.W, YB: cfg.H})
			if !ok {
				continue
			}
			for y := clipped.YA; y <= clipped.YB; y++ {
				for x := clipped.XA; x <= clipped.XB; x++ {
					row[(y-1)*cfg.W+(x-1)] = true
				}
			}
		}
		for i, b := range row {
			vectors[i] = append(vectors[i], b)
		}
	}
	exec, err := runner.Execute(plan)
	if err != nil {
		return nil, err
	}
	if !exec.Success {
		return nil, fmt.Errorf("execution aborted after %d cycles", exec.Cycles)
	}
	return vectors, nil
}

// meanCorrelationAtDistance averages Pearson correlations of actuation
// vectors over sampled MC pairs at exactly Manhattan distance d, skipping
// never-actuated (constant) cells.
func meanCorrelationAtDistance(vectors [][]bool, w, h, d, maxPairs int, src *randx.Source) (float64, int) {
	// Index cells that were actuated at least once.
	active := make([]int, 0, len(vectors))
	for i, v := range vectors {
		for _, b := range v {
			if b {
				active = append(active, i)
				break
			}
		}
	}
	if len(active) == 0 {
		return 0, 0
	}
	sum, count := 0.0, 0
	order := src.Perm(len(active))
	for _, ai := range order {
		if count >= maxPairs {
			break
		}
		i := active[ai]
		xi, yi := i%w+1, i/w+1
		// Enumerate partner cells at Manhattan distance d in the positive
		// half-plane (dx > 0, plus the single (0, +d) offset) so each
		// unordered pair is visited once.
		for dx := 0; dx <= d; dx++ {
			dy := d - dx
			offsets := [][2]int{{dx, dy}, {dx, -dy}}
			if dy == 0 {
				offsets = offsets[:1]
			}
			for _, off := range offsets {
				if off[0] == 0 && off[1] < 0 {
					continue
				}
				if off[0] == 0 && off[1] == 0 {
					continue
				}
				xj, yj := xi+off[0], yi+off[1]
				if xj < 1 || xj > w || yj < 1 || yj > h {
					continue
				}
				j := (yj-1)*w + (xj - 1)
				//lint:ignore gridbounds vectors has w*h entries and the neighbor guard above confines 1 ≤ xj ≤ w, 1 ≤ yj ≤ h
				r, err := stats.PearsonBool(vectors[i], vectors[j])
				if err != nil {
					continue // constant partner vector
				}
				sum += r
				count++
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RenderFig3 writes the Fig. 3 reproduction grouped by assay and size.
func RenderFig3(w io.Writer, points []Fig3Point) {
	fprintf(w, "Fig. 3 — actuation correlation vs Manhattan distance\n")
	tw := newTable(w)
	fprintf(tw, "assay\tdroplet\td=1\td=2\td=3\td=4\td=5\n")
	type key struct {
		assay string
		side  int
	}
	rows := map[key][]float64{}
	var order []key
	for _, p := range points {
		k := key{p.Assay, p.Side}
		if _, ok := rows[k]; !ok {
			order = append(order, k)
			rows[k] = make([]float64, 6)
		}
		if p.Distance >= 1 && p.Distance <= 5 {
			rows[k][p.Distance] = p.Correlation
		}
	}
	for _, k := range order {
		fprintf(tw, "%s\t%d×%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			k.assay, k.side, k.side, rows[k][1], rows[k][2], rows[k][3], rows[k][4], rows[k][5])
	}
	tw.Flush()
}
