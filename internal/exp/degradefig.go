package exp

import (
	"io"

	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/stats"
)

// Fig5Series is one capacitance-vs-actuations trace of Fig. 5 with its
// linear fit.
type Fig5Series struct {
	Size         degrade.ElectrodeSize
	PulseSeconds float64
	Points       []degrade.CapacitancePoint
	Fit          stats.LinearFit
}

// Fig5 reproduces the PCB degradation experiments: part (a) is the 1 s
// charge-trapping run, part (b) the 5 s residual-charge run, each over the
// three electrode sizes.
func Fig5(seed uint64) ([]Fig5Series, error) {
	src := randx.New(seed)
	var out []Fig5Series
	for _, pulse := range []float64{1, 5} {
		for _, size := range degrade.ElectrodeSizes {
			trace := degrade.CapacitanceTrace(size, degrade.DefaultBench(pulse),
				src.Split(size.String()).SplitN("pulse", int(pulse)))
			xs := make([]float64, len(trace))
			ys := make([]float64, len(trace))
			for i, pt := range trace {
				xs[i] = float64(pt.N)
				ys[i] = pt.PF
			}
			fit, err := stats.FitLinear(xs, ys)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig5Series{Size: size, PulseSeconds: pulse, Points: trace, Fit: fit})
		}
	}
	return out, nil
}

// RenderFig5 writes the Fig. 5 reproduction.
func RenderFig5(w io.Writer, series []Fig5Series) {
	fprintf(w, "Fig. 5 — electrode capacitance growth (synthetic PCB bench)\n")
	tw := newTable(w)
	fprintf(tw, "part\telectrode\tpulse (s)\tC0 (pF)\tslope (pF/actuation)\tR²\n")
	for _, s := range series {
		part := "(a) charge trapping"
		if s.PulseSeconds > 1 {
			part = "(b) residual charge"
		}
		fprintf(tw, "%s\t%s\t%.0f\t%.2f\t%.4f\t%.3f\n",
			part, s.Size, s.PulseSeconds, s.Fit.Intercept, s.Fit.Slope, s.Fit.R2)
	}
	tw.Flush()
}

// Fig6Series is one relative-force decay trace of Fig. 6 with its
// exponential fit and the paper's reference constants.
type Fig6Series struct {
	Size     degrade.ElectrodeSize
	Points   []degrade.ForcePoint
	Fit      stats.ExpFit
	PaperTau float64
	PaperC   float64
}

// Fig6 reproduces the EWOD-force model fit: measured (synthetic) force
// points per electrode size, fitted with F̄(n) = τ^(2n/c).
func Fig6(seed uint64) ([]Fig6Series, error) {
	src := randx.New(seed)
	var out []Fig6Series
	for _, size := range degrade.ElectrodeSizes {
		truth := size.FittedParams()
		pts := degrade.ForceTrace(size, 1600, 40, 0.02, src.Split(size.String()))
		ns := make([]float64, len(pts))
		fs := make([]float64, len(pts))
		for i, pt := range pts {
			ns[i] = float64(pt.N)
			fs[i] = pt.Force
		}
		fit, err := stats.FitForceModel(ns, fs, truth.Tau)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Series{
			Size: size, Points: pts, Fit: fit,
			PaperTau: truth.Tau, PaperC: truth.C,
		})
	}
	return out, nil
}

// RenderFig6 writes the Fig. 6 reproduction.
func RenderFig6(w io.Writer, series []Fig6Series) {
	fprintf(w, "Fig. 6 — relative EWOD force vs actuations, fitted F̄ = τ^(2n/c)\n")
	tw := newTable(w)
	fprintf(tw, "electrode\tτ (paper)\tc (paper)\tc (fit)\tR²_adj\n")
	for _, s := range series {
		fprintf(tw, "%s\t%.3f\t%.1f\t%.1f\t%.4f\n", s.Size, s.PaperTau, s.PaperC, s.Fit.C, s.Fit.R2Adj)
	}
	tw.Flush()
	fprintf(w, "paper reports R²_adj > 0.94 for all curves\n")
}

// Fig7Config is one (τ, c, b) configuration of Fig. 7.
type Fig7Config struct {
	Tau float64
	C   float64
	B   int
}

// Fig7Series traces actual degradation D and observed health H against the
// actuation count for one configuration.
type Fig7Series struct {
	Config Fig7Config
	N      []int
	D      []float64
	H      []int
}

// DefaultFig7Configs spans the parameter ranges the evaluation samples from
// (τ ∈ [0.5, 0.9], c ∈ [200, 500]) at the paper's b = 2, plus a b = 3
// configuration showing the model generalizes to any b.
func DefaultFig7Configs() []Fig7Config {
	return []Fig7Config{
		{Tau: 0.5, C: 200, B: 2},
		{Tau: 0.7, C: 350, B: 2},
		{Tau: 0.9, C: 500, B: 2},
		{Tau: 0.7, C: 350, B: 3},
	}
}

// Fig7 computes D(n) and H(n) curves for the configurations.
func Fig7(configs []Fig7Config, maxN, step int) []Fig7Series {
	var out []Fig7Series
	for _, cfg := range configs {
		p := degrade.Params{Tau: cfg.Tau, C: cfg.C}
		s := Fig7Series{Config: cfg}
		for n := 0; n <= maxN; n += step {
			s.N = append(s.N, n)
			s.D = append(s.D, p.Degradation(n))
			s.H = append(s.H, p.Health(n, cfg.B))
		}
		out = append(out, s)
	}
	return out
}

// RenderFig7 writes the Fig. 7 reproduction.
func RenderFig7(w io.Writer, series []Fig7Series) {
	fprintf(w, "Fig. 7 — degradation D and observed health H vs actuations\n")
	tw := newTable(w)
	fprintf(tw, "τ\tc\tb\tn: D → H samples\n")
	for _, s := range series {
		fprintf(tw, "%.2f\t%.0f\t%d\t", s.Config.Tau, s.Config.C, s.Config.B)
		for i := 0; i < len(s.N); i += len(s.N) / 5 {
			fprintf(tw, "n=%d: %.2f→%d  ", s.N[i], s.D[i], s.H[i])
		}
		fprintf(tw, "\n")
	}
	tw.Flush()
}
