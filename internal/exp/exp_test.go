package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"meda/internal/assay"
	"meda/internal/circuit"
	"meda/internal/geom"
)

func TestFig2Codes(t *testing.T) {
	res := Fig2(100)
	if res.Codes[circuit.Healthy] != "11" ||
		res.Codes[circuit.PartiallyDegraded] != "01" ||
		res.Codes[circuit.CompletelyDegraded] != "00" {
		t.Errorf("codes = %v", res.Codes)
	}
	if math.Abs(res.AddedClockNS-res.OriginalClockNS-5) > 0.01 {
		t.Errorf("DFF offset = %v ns, want 5", res.AddedClockNS-res.OriginalClockNS)
	}
	if len(res.Rows) != 100 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// Crossing times ordered healthy < partial < degraded.
	h := res.CrossingNS[circuit.Healthy]
	p := res.CrossingNS[circuit.PartiallyDegraded]
	d := res.CrossingNS[circuit.CompletelyDegraded]
	if !(h < p && p < d) {
		t.Errorf("crossings not ordered: %v %v %v", h, p, d)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("render missing title")
	}
}

func TestFig5Trends(t *testing.T) {
	series, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 2 pulse lengths × 3 sizes
		t.Fatalf("series = %d, want 6", len(series))
	}
	slopes := map[float64]map[string]float64{1: {}, 5: {}}
	for _, s := range series {
		if s.Fit.Slope <= 0 {
			t.Errorf("%v pulse %v: non-positive slope", s.Size, s.PulseSeconds)
		}
		if s.Fit.R2 < 0.85 {
			t.Errorf("%v pulse %v: R² = %v", s.Size, s.PulseSeconds, s.Fit.R2)
		}
		slopes[s.PulseSeconds][s.Size.String()] = s.Fit.Slope
	}
	// Residual charge (5 s) degrades much faster than charge trapping (1 s).
	for size, s1 := range slopes[1] {
		if slopes[5][size] < 5*s1 {
			t.Errorf("%s: 5 s slope %v not ≫ 1 s slope %v", size, slopes[5][size], s1)
		}
	}
	var buf bytes.Buffer
	RenderFig5(&buf, series)
	if !strings.Contains(buf.String(), "charge trapping") {
		t.Error("render missing part label")
	}
}

func TestFig6FitQuality(t *testing.T) {
	series, err := Fig6(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	for _, s := range series {
		if s.Fit.R2Adj <= 0.94 {
			t.Errorf("%v: R²_adj = %v, paper reports > 0.94", s.Size, s.Fit.R2Adj)
		}
		if math.Abs(s.Fit.C-s.PaperC)/s.PaperC > 0.05 {
			t.Errorf("%v: fitted c = %v, paper %v", s.Size, s.Fit.C, s.PaperC)
		}
	}
	var buf bytes.Buffer
	RenderFig6(&buf, series)
	if !strings.Contains(buf.String(), "R²_adj") {
		t.Error("render missing fit quality")
	}
}

func TestFig7Staircase(t *testing.T) {
	series := Fig7(DefaultFig7Configs(), 1000, 10)
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		top := 1<<uint(s.Config.B) - 1
		if s.H[0] != top {
			t.Errorf("fresh health = %d, want %d", s.H[0], top)
		}
		for i := 1; i < len(s.N); i++ {
			if s.D[i] > s.D[i-1] {
				t.Error("D must be non-increasing")
			}
			if s.H[i] > s.H[i-1] {
				t.Error("H must be non-increasing")
			}
		}
		// The observed health is the quantized degradation at all samples.
		for i := range s.N {
			want := int(math.Floor(float64(int(1)<<uint(s.Config.B)) * s.D[i]))
			if want > top {
				want = top
			}
			if s.H[i] != want {
				t.Errorf("H(%d) = %d, want %d", s.N[i], s.H[i], want)
			}
		}
	}
	var buf bytes.Buffer
	RenderFig7(&buf, series)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTableIVMatchesPaper(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 1 + 2 + 1 + 1 = 6 routing jobs.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	find := func(job string) TableIVRow {
		for _, r := range rows {
			if r.MO+"/"+r.Job == job {
				return r
			}
		}
		t.Fatalf("job %s missing", job)
		return TableIVRow{}
	}
	r := find("M1/RJ0.0")
	if r.Goal != (geom.Rect{XA: 16, YA: 1, XB: 19, YB: 4}) || r.Hazard != (geom.Rect{XA: 13, YA: 1, XB: 22, YB: 7}) {
		t.Errorf("M1 row = %+v", r)
	}
	r = find("M4/RJ3.0")
	if r.Start != (geom.Rect{XA: 8, YA: 14, XB: 13, YB: 18}) ||
		r.Goal != (geom.Rect{XA: 38, YA: 14, XB: 43, YB: 18}) ||
		r.Hazard != (geom.Rect{XA: 5, YA: 11, XB: 46, YB: 21}) {
		t.Errorf("M4 row = %+v", r)
	}
	if r.Size != "30 (6×5)" {
		t.Errorf("M4 size = %q, want 6×5 for area 32", r.Size)
	}
	var buf bytes.Buffer
	RenderTableIV(&buf, rows)
	if !strings.Contains(buf.String(), "RJ3.0") {
		t.Error("render missing job")
	}
}

func TestTableVStateCounts(t *testing.T) {
	rows, err := TableV(TableVConfig{Areas: []int{10, 20}, Droplets: []int{3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]int{
		{10, 3}: 67, {10, 4}: 52, {10, 5}: 39, {10, 6}: 28,
		{20, 3}: 327, {20, 4}: 292, {20, 5}: 259, {20, 6}: 228,
	}
	for _, r := range rows {
		if w := want[[2]int{r.Area, r.Droplet}]; r.States != w {
			t.Errorf("area %d droplet %d: states = %d, want %d", r.Area, r.Droplet, r.States, w)
		}
		if r.Total <= 0 {
			t.Error("non-positive total time")
		}
	}
	var buf bytes.Buffer
	RenderTableV(&buf, rows)
	if !strings.Contains(buf.String(), "#states") {
		t.Error("render missing header")
	}
}

func TestFig3SmallRun(t *testing.T) {
	cfg := DefaultFig3Config(3)
	cfg.Assays = []assay.Benchmark{assay.ChIP}
	cfg.Sides = []int{3, 6}
	cfg.MaxPairs = 800
	points, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*5 {
		t.Fatalf("points = %d", len(points))
	}
	byKey := map[[2]int]float64{}
	for _, p := range points {
		if p.Correlation < -1 || p.Correlation > 1 {
			t.Errorf("correlation out of range: %+v", p)
		}
		if p.Pairs == 0 {
			t.Errorf("no pairs for %+v", p)
		}
		byKey[[2]int{p.Side, p.Distance}] = p.Correlation
	}
	// Headline trends: correlation decreases with distance and increases
	// with droplet size.
	if !(byKey[[2]int{3, 1}] > byKey[[2]int{3, 5}]) {
		t.Errorf("3×3: corr(d=1)=%v should exceed corr(d=5)=%v",
			byKey[[2]int{3, 1}], byKey[[2]int{3, 5}])
	}
	if !(byKey[[2]int{6, 1}] > byKey[[2]int{3, 1}]) {
		t.Errorf("corr at d=1: 6×6 (%v) should exceed 3×3 (%v)",
			byKey[[2]int{6, 1}], byKey[[2]int{3, 1}])
	}
	var buf bytes.Buffer
	RenderFig3(&buf, points)
	if !strings.Contains(buf.String(), "d=1") {
		t.Error("render missing header")
	}
}

func TestFig15SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultFig15Config(4)
	cfg.Assays = []assay.Benchmark{assay.CovidRAT}
	cfg.KMaxSweep = []int{60, 400}
	cfg.Trials = 2
	cfg.Executions = 2
	points, err := Fig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*2 { // 2 kmax × 2 routers
		t.Fatalf("points = %d", len(points))
	}
	pos := map[string]map[int]float64{}
	for _, p := range points {
		if p.PoS < 0 || p.PoS > 1 {
			t.Errorf("PoS out of range: %+v", p)
		}
		if pos[p.Router] == nil {
			pos[p.Router] = map[int]float64{}
		}
		pos[p.Router][p.KMax] = p.PoS
	}
	// A larger budget can only help.
	for router, m := range pos {
		if m[400] < m[60] {
			t.Errorf("%s: PoS(400)=%v < PoS(60)=%v", router, m[400], m[60])
		}
	}
	var buf bytes.Buffer
	RenderFig15(&buf, points)
	if !strings.Contains(buf.String(), "k≤400") {
		t.Error("render missing kmax column")
	}
}

func TestFig16SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultFig16Config(5)
	cfg.Assays = []assay.Benchmark{assay.CovidRAT}
	cfg.Trials = 2
	cfg.Executions = 2
	cfg.KMax = 400
	rows, err := Fig16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2 { // 2 fault modes × 2 routers
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 400 {
			t.Errorf("implausible mean cycles: %+v", r)
		}
		if r.Executions == 0 {
			t.Errorf("no executions: %+v", r)
		}
		if r.MeanExecsToFirstFailure < 1 {
			t.Errorf("bad first-failure stat: %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderFig16(&buf, rows)
	if !strings.Contains(buf.String(), "mean k") {
		t.Error("render missing header")
	}
}
