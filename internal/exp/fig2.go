package exp

import (
	"io"

	"meda/internal/circuit"
)

// Fig2Row is one time sample of the three discharge waveforms of Fig. 2.
type Fig2Row struct {
	TimeNS    float64
	VHealthy  float64
	VPartial  float64
	VDegraded float64
}

// Fig2Result reproduces Fig. 2: the sensing waveforms of the three
// degradation classes, the threshold-crossing times, the DFF clock timing,
// and the resulting 2-bit codes.
type Fig2Result struct {
	Rows []Fig2Row
	// CrossingNS holds the threshold-crossing time (ns) per class.
	CrossingNS map[circuit.HealthClass]float64
	// Codes holds the sensed 2-bit code per class ("11", "01", "00").
	Codes map[circuit.HealthClass]string
	// OriginalClockNS and AddedClockNS are the two DFF clock edges (ns);
	// their difference is the paper's 5 ns offset.
	OriginalClockNS float64
	AddedClockNS    float64
}

// Fig2 runs the behavioral MC sensing simulation.
func Fig2(samples int) Fig2Result {
	tm := circuit.DefaultTiming()
	res := Fig2Result{
		CrossingNS:      map[circuit.HealthClass]float64{},
		Codes:           map[circuit.HealthClass]string{},
		OriginalClockNS: tm.Original * 1e9,
		AddedClockNS:    tm.Added * 1e9,
	}
	classes := []circuit.HealthClass{circuit.Healthy, circuit.PartiallyDegraded, circuit.CompletelyDegraded}
	cells := make([]circuit.Cell, len(classes))
	for i, cl := range classes {
		cells[i] = circuit.CellFor(cl)
		res.CrossingNS[cl] = cells[i].CrossingTime() * 1e9
		res.Codes[cl] = cells[i].Sense(tm).Code()
	}
	// Sample a window around the crossings (±50 ns).
	lo := res.CrossingNS[circuit.Healthy] - 50
	hi := res.CrossingNS[circuit.CompletelyDegraded] + 50
	if samples < 2 {
		samples = 2
	}
	for i := 0; i < samples; i++ {
		tns := lo + (hi-lo)*float64(i)/float64(samples-1)
		t := tns * 1e-9
		res.Rows = append(res.Rows, Fig2Row{
			TimeNS:    tns,
			VHealthy:  cells[0].Voltage(t),
			VPartial:  cells[1].Voltage(t),
			VDegraded: cells[2].Voltage(t),
		})
	}
	return res
}

// Render writes the Fig. 2 reproduction as text.
func (r Fig2Result) Render(w io.Writer) {
	fprintf(w, "Fig. 2 — microelectrode sensing simulation\n")
	fprintf(w, "original DFF clock: %.2f ns, added DFF clock: %.2f ns (offset %.2f ns)\n",
		r.OriginalClockNS, r.AddedClockNS, r.AddedClockNS-r.OriginalClockNS)
	tw := newTable(w)
	fprintf(tw, "class\tcapacitance (fF)\tcrossing (ns)\tcode\n")
	for _, cl := range []circuit.HealthClass{circuit.Healthy, circuit.PartiallyDegraded, circuit.CompletelyDegraded} {
		fprintf(tw, "%s\t%.3f\t%.2f\t%q\n", cl, cl.Capacitance()*1e15, r.CrossingNS[cl], r.Codes[cl])
	}
	tw.Flush()
	fprintf(w, "waveform samples: %d points over [%.1f, %.1f] ns\n",
		len(r.Rows), r.Rows[0].TimeNS, r.Rows[len(r.Rows)-1].TimeNS)
}
