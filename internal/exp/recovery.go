package exp

import (
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/stats"
)

// RecoveryConfig configures the proactive-vs-reactive extension experiment:
// the paper argues (Sec. I–II) that proactively avoiding degraded
// microelectrodes beats reactive error recovery, which "may require
// discarding current droplets and repeating a number of microfluidic
// operations". This experiment quantifies that claim on fault-heavy chips
// by racing three controllers:
//
//	baseline            — health-blind shortest paths, no recovery
//	reactive            — health-blind shortest paths + roll-back recovery
//	adaptive (proactive)— the paper's synthesis framework
type RecoveryConfig struct {
	Seed          uint64
	Chip          chip.Config
	FaultFraction float64
	FailAfterLo   int
	FailAfterHi   int
	Trials        int
	KMax          int
	Assays        []assay.Benchmark
	Area          int
}

// DefaultRecoveryConfig uses heavier clustered faults than Fig. 16 so that
// pure retrial visibly fails and recovery has something to do.
func DefaultRecoveryConfig(seed uint64) RecoveryConfig {
	return RecoveryConfig{
		Seed:          seed,
		Chip:          chip.Default(),
		FaultFraction: 0.35,
		FailAfterLo:   2,
		FailAfterHi:   30,
		Trials:        10,
		KMax:          1000,
		Assays:        []assay.Benchmark{assay.CEP, assay.SerialDilution, assay.NuIP},
		Area:          16,
	}
}

// RecoveryRow is one (assay, controller) cell of the extension experiment.
type RecoveryRow struct {
	Assay      string
	Controller string
	// SuccessRate is the fraction of executions completing within KMax.
	SuccessRate float64
	// MeanCycles ± SD over all executions (aborts count KMax).
	MeanCycles float64
	SD         float64
	// MeanRollbacks and MeanRedone average the recovery effort (reactive
	// controller only).
	MeanRollbacks float64
	MeanRedone    float64
}

// Recovery runs the extension experiment: one execution per fresh chip, the
// same chips across the three controllers.
func Recovery(cfg RecoveryConfig) ([]RecoveryRow, error) {
	type controller struct {
		name     string
		router   func() sched.Router
		recovery bool
	}
	controllers := []controller{
		{"baseline", func() sched.Router { return sched.NewBaseline() }, false},
		{"reactive", func() sched.Router { return sched.NewBaseline() }, true},
		{"adaptive", func() sched.Router { return adaptiveRouter() }, false},
	}
	var out []RecoveryRow
	for _, bench := range cfg.Assays {
		a := bench.Build(assay.Layout{W: cfg.Chip.W, H: cfg.Chip.H}, cfg.Area)
		plan, err := route.Compile(a, cfg.Chip.W, cfg.Chip.H)
		if err != nil {
			return nil, err
		}
		for _, ctl := range controllers {
			var cycles, rollbacks, redone []float64
			successes := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				src := randx.New(cfg.Seed).Split(bench.String()).SplitN("trial", trial)
				chipCfg := cfg.Chip
				chipCfg.Faults = degrade.FaultPlan{
					Mode:        degrade.FaultClustered,
					Fraction:    cfg.FaultFraction,
					FailAfterLo: cfg.FailAfterLo,
					FailAfterHi: cfg.FailAfterHi,
				}
				c, err := chip.New(chipCfg, src.Split("chip"))
				if err != nil {
					return nil, err
				}
				simCfg := baseSimConfig()
				simCfg.KMax = cfg.KMax
				if ctl.recovery {
					simCfg.Recovery = sim.DefaultRecovery()
				}
				runner := sim.NewRunner(simCfg, c, ctl.router(), src.Split("sim"))
				exec, err := runner.Execute(plan)
				if err != nil {
					return nil, err
				}
				cycles = append(cycles, float64(exec.Cycles))
				rollbacks = append(rollbacks, float64(exec.Rollbacks))
				redone = append(redone, float64(exec.RedoneOps))
				if exec.Success {
					successes++
				}
			}
			mean, sd := stats.MeanStd(cycles)
			out = append(out, RecoveryRow{
				Assay:         bench.String(),
				Controller:    ctl.name,
				SuccessRate:   float64(successes) / float64(cfg.Trials),
				MeanCycles:    mean,
				SD:            sd,
				MeanRollbacks: stats.Mean(rollbacks),
				MeanRedone:    stats.Mean(redone),
			})
		}
	}
	return out, nil
}

// RenderRecovery writes the extension-experiment table.
func RenderRecovery(w io.Writer, rows []RecoveryRow) {
	fprintf(w, "Extension — proactive avoidance vs reactive roll-back recovery\n")
	fprintf(w, "(clustered hard faults; one execution per fresh chip)\n")
	tw := newTable(w)
	fprintf(tw, "assay\tcontroller\tsuccess\tmean k\tSD\trollbacks\tredone ops\n")
	for _, r := range rows {
		fprintf(tw, "%s\t%s\t%.2f\t%.0f\t%.0f\t%.1f\t%.1f\n",
			r.Assay, r.Controller, r.SuccessRate, r.MeanCycles, r.SD, r.MeanRollbacks, r.MeanRedone)
	}
	tw.Flush()
}
