package exp

import (
	"io"
	"strconv"
	"time"

	"meda/internal/assay"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
)

// TableIVRow is one routing job of Table IV.
type TableIVRow struct {
	MO      string
	Type    string
	Job     string
	Size    string
	SizeErr float64
	Start   geom.Rect
	Goal    geom.Rect
	Hazard  geom.Rect
}

// TableIV regenerates the MO → RJ decomposition of the paper's running
// example (Fig. 12 / Table IV) on a 60×30 chip.
func TableIV() ([]TableIVRow, error) {
	a := &assay.Assay{Name: "table-iv", MOs: []assay.MO{
		{ID: 0, Type: assay.Dis, Loc: []assay.Point{{X: 17.5, Y: 2.5}}, Area: 16},
		{ID: 1, Type: assay.Dis, Loc: []assay.Point{{X: 17.5, Y: 28.5}}, Area: 16},
		{ID: 2, Type: assay.Mix, Pre: []int{0, 1}, Loc: []assay.Point{{X: 10.5, Y: 15.5}}},
		{ID: 3, Type: assay.Mag, Pre: []int{2}, Loc: []assay.Point{{X: 40.5, Y: 15.5}}, Hold: 10},
		{ID: 4, Type: assay.Out, Pre: []int{3}, Loc: []assay.Point{{X: 58.5, Y: 15.5}}},
	}}
	plan, err := route.Compile(a, 60, 30)
	if err != nil {
		return nil, err
	}
	var rows []TableIVRow
	for i := range plan.MOs {
		cm := &plan.MOs[i]
		for _, j := range cm.Jobs {
			w, h := j.Goal.Width(), j.Goal.Height()
			rows = append(rows, TableIVRow{
				MO:      "M" + itoa(i+1),
				Type:    cm.MO.Type.String(),
				Job:     j.Name(),
				Size:    itoa(w*h) + " (" + itoa(w) + "×" + itoa(h) + ")",
				SizeErr: cm.SizeErr,
				Start:   j.Start,
				Goal:    j.Goal,
				Hazard:  j.Hazard,
			})
		}
	}
	return rows, nil
}

func itoa(v int) string { return strconv.Itoa(v) }

// RenderTableIV writes the decomposition table.
func RenderTableIV(w io.Writer, rows []TableIVRow) {
	fprintf(w, "Table IV — MO → RJ decomposition (60×30 chip)\n")
	tw := newTable(w)
	fprintf(tw, "MO\ttype\tRJ\tsize\terr%%\tstart δs\tgoal δg\thazard δh\n")
	for _, r := range rows {
		fprintf(tw, "%s\t%s\t%s\t%s\t%.1f\t%v\t%v\t%v\n",
			r.MO, r.Type, r.Job, r.Size, 100*r.SizeErr, r.Start, r.Goal, r.Hazard)
	}
	tw.Flush()
}

// TableVRow is one row of Table V: model size and synthesis runtime for one
// (routing-job area, droplet size) combination.
type TableVRow struct {
	Area         int
	Droplet      int
	States       int
	Transitions  int
	Choices      int
	Construction time.Duration
	Synthesis    time.Duration
	Total        time.Duration
}

// TableVConfig selects the sweep.
type TableVConfig struct {
	Areas    []int
	Droplets []int
}

// DefaultTableVConfig is the paper's sweep: RJ areas 10², 20², 30² and
// droplets 3×3 … 6×6.
func DefaultTableVConfig() TableVConfig {
	return TableVConfig{Areas: []int{10, 20, 30}, Droplets: []int{3, 4, 5, 6}}
}

// TableV measures synthesis performance. Like the paper, it assumes a
// worst-case health matrix with no zero elements (a uniformly degraded field
// with success probabilities strictly below one, so every failure branch is
// present in the model).
func TableV(cfg TableVConfig) ([]TableVRow, error) {
	worn := func(x, y int) float64 { return 0.81 }
	var rows []TableVRow
	for _, area := range cfg.Areas {
		for _, d := range cfg.Droplets {
			rj := route.RJ{
				Start:  geom.Rect{XA: 1, YA: 1, XB: d, YB: d},
				Goal:   geom.Rect{XA: area - d + 1, YA: area - d + 1, XB: area, YB: area},
				Hazard: geom.Rect{XA: 1, YA: 1, XB: area, YB: area},
			}
			res, err := synth.Synthesize(rj, worn, synth.DefaultOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, TableVRow{
				Area: area, Droplet: d,
				States:       res.Stats.States,
				Transitions:  res.Stats.Transitions,
				Choices:      res.Stats.Choices,
				Construction: res.Stats.Construction,
				Synthesis:    res.Stats.Synthesis,
				Total:        res.Stats.Total(),
			})
		}
	}
	return rows, nil
}

// RenderTableV writes the synthesis-performance table.
func RenderTableV(w io.Writer, rows []TableVRow) {
	fprintf(w, "Table V — synthesis performance (worst-case health matrix)\n")
	tw := newTable(w)
	fprintf(tw, "RJ area\tdroplet\t#states\t#transitions\t#choices\tconstruction\tsynthesis\ttotal\n")
	for _, r := range rows {
		fprintf(tw, "%d×%d\t%d×%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			r.Area, r.Area, r.Droplet, r.Droplet,
			r.States, r.Transitions, r.Choices,
			r.Construction.Round(time.Microsecond),
			r.Synthesis.Round(time.Microsecond),
			r.Total.Round(time.Microsecond))
	}
	tw.Flush()
}
