package exp

import (
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sim"
	"meda/internal/stats"
	"meda/internal/synth"
)

// HealthBitsConfig configures the sensing-resolution ablation: the paper's
// reliability model "is valid for any general b" (Sec. IV-B); this
// experiment quantifies what the extra bits buy during chip reuse.
type HealthBitsConfig struct {
	Seed   uint64
	Bits   []int
	Trials int
	// Executions per chip; later runs show the benefit of earlier
	// degradation detection.
	Executions int
	Bench      assay.Benchmark
	Area       int
	KMax       int
}

// DefaultHealthBitsConfig sweeps b ∈ {1, 2, 3, 4} over serial-dilution
// reuse.
func DefaultHealthBitsConfig(seed uint64) HealthBitsConfig {
	return HealthBitsConfig{
		Seed: seed, Bits: []int{1, 2, 3, 4},
		Trials: 6, Executions: 10,
		Bench: assay.SerialDilution, Area: 16, KMax: 2000,
	}
}

// HealthBitsRow is one sensing resolution's outcome.
type HealthBitsRow struct {
	Bits int
	// MeanLateCycles ± SD of the final execution's cycle count.
	MeanLateCycles float64
	SD             float64
	// CompletedRuns is the mean number of executions completed.
	CompletedRuns float64
}

// HealthBits runs the sweep: identical chips per trial across b values
// (sensing resolution changes only what the controller observes).
func HealthBits(cfg HealthBitsConfig) ([]HealthBitsRow, error) {
	var out []HealthBitsRow
	for _, bits := range cfg.Bits {
		late := make([]float64, cfg.Trials)
		completed := make([]float64, cfg.Trials)
		bits := bits
		err := parallelTrials(cfg.Trials, func(trial int) error {
			src := randx.New(cfg.Seed).SplitN("trial", trial)
			chipCfg := chip.Default()
			chipCfg.HealthBits = bits
			c, err := chip.New(chipCfg, src.Split("chip"))
			if err != nil {
				return err
			}
			a := cfg.Bench.Build(assay.Layout{W: chipCfg.W, H: chipCfg.H}, cfg.Area)
			plan, err := route.Compile(a, chipCfg.W, chipCfg.H)
			if err != nil {
				return err
			}
			simCfg := baseSimConfig()
			simCfg.KMax = cfg.KMax
			runner := sim.NewRunner(simCfg, c, adaptiveRouter(), src.Split("sim"))
			for e := 0; e < cfg.Executions; e++ {
				exec, err := runner.Execute(plan)
				if err != nil {
					return err
				}
				if !exec.Success {
					break
				}
				completed[trial]++
				late[trial] = float64(exec.Cycles)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		mean, sd := stats.MeanStd(late)
		out = append(out, HealthBitsRow{
			Bits: bits, MeanLateCycles: mean, SD: sd,
			CompletedRuns: stats.Mean(completed),
		})
	}
	return out, nil
}

// RenderHealthBits writes the sensing-resolution table.
func RenderHealthBits(w io.Writer, rows []HealthBitsRow) {
	fprintf(w, "Extension — health-sensing resolution b (adaptive router, chip reuse)\n")
	tw := newTable(w)
	fprintf(tw, "b\tfinal-run cycles\tSD\tcompleted runs\n")
	for _, r := range rows {
		fprintf(tw, "%d\t%.0f\t%.0f\t%.1f\n", r.Bits, r.MeanLateCycles, r.SD, r.CompletedRuns)
	}
	tw.Flush()
}

// AlphabetRow is one action-alphabet variant's routing cost on a uniformly
// worn field (the DESIGN.md "action alphabet" ablation).
type AlphabetRow struct {
	Name           string
	ExpectedCycles float64
	States         int
	Choices        int
}

// Alphabet quantifies the value of the richer action alphabet on a worn
// 20×20 routing job.
func Alphabet() ([]AlphabetRow, error) {
	worn := func(x, y int) float64 { return 0.81 }
	rj := route.RJ{
		Start:  geomRect(1, 1, 4, 4),
		Goal:   geomRect(17, 17, 20, 20),
		Hazard: geomRect(1, 1, 20, 20),
	}
	variants := []struct {
		name                   string
		double, ordinal, morph bool
	}{
		{"cardinal-only", false, false, false},
		{"+ordinal", false, true, false},
		{"+double-step", true, true, false},
		{"+morphing", true, true, true},
	}
	var out []AlphabetRow
	for _, v := range variants {
		opt := synth.DefaultOptions()
		opt.Model.AllowDouble = v.double
		opt.Model.AllowOrdinal = v.ordinal
		opt.Model.AllowMorph = v.morph
		res, err := synth.Synthesize(rj, worn, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, AlphabetRow{
			Name:           v.name,
			ExpectedCycles: res.Value,
			States:         res.Stats.States,
			Choices:        res.Stats.Choices,
		})
	}
	return out, nil
}

// RenderAlphabet writes the action-alphabet table.
func RenderAlphabet(w io.Writer, rows []AlphabetRow) {
	fprintf(w, "Extension — action-alphabet ablation (worn 20×20 job, Rmin)\n")
	tw := newTable(w)
	fprintf(tw, "alphabet\texpected cycles\t#states\t#choices\n")
	for _, r := range rows {
		fprintf(tw, "%s\t%.2f\t%d\t%d\n", r.Name, r.ExpectedCycles, r.States, r.Choices)
	}
	tw.Flush()
}
