package exp

import (
	"io"
	"time"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/circuit"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
)

// TTRRow characterizes one benchmark: its plan size, nominal cycle count on
// a healthy chip, and the wall-clock time-to-result implied by the
// operational-cycle timing model of Sec. III-A (scan-in, actuate, sense,
// scan-out).
type TTRRow struct {
	Assay       string
	Operations  int
	RoutingJobs int
	Cycles      int
	WallClock   time.Duration
}

// TimeToResult executes every benchmark once on a robust chip and converts
// cycles to wall-clock time, the quantity a clinician waits for.
func TimeToResult(seed uint64) ([]TTRRow, error) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	timing := circuit.DefaultCycleTiming()
	cells := cfg.W * cfg.H
	benches := []assay.Benchmark{
		assay.MasterMix, assay.CEP, assay.SerialDilution, assay.NuIP,
		assay.CovidRAT, assay.CovidPCR, assay.ChIP, assay.InVitro,
		assay.GeneExpression, assay.Protein, assay.PCRMix,
	}
	var out []TTRRow
	for _, bench := range benches {
		src := randx.New(seed).Split(bench.String())
		c, err := chip.New(cfg, src.Split("chip"))
		if err != nil {
			return nil, err
		}
		a := bench.Build(assay.Layout{W: cfg.W, H: cfg.H}, 16)
		plan, err := route.Compile(a, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		runner := sim.NewRunner(baseSimConfig(), c, sched.NewBaseline(), src.Split("sim"))
		exec, err := runner.Execute(plan)
		if err != nil {
			return nil, err
		}
		out = append(out, TTRRow{
			Assay:       bench.String(),
			Operations:  a.Len(),
			RoutingJobs: plan.TotalJobs(),
			Cycles:      exec.Cycles,
			WallClock:   timing.TimeToResult(exec.Cycles, cells),
		})
	}
	return out, nil
}

// RenderTTR writes the benchmark characterization.
func RenderTTR(w io.Writer, rows []TTRRow) {
	fprintf(w, "Benchmark characterization — nominal time-to-result (healthy chip)\n")
	tw := newTable(w)
	fprintf(tw, "assay\toperations\trouting jobs\tcycles\twall clock\n")
	for _, r := range rows {
		fprintf(tw, "%s\t%d\t%d\t%d\t%v\n",
			r.Assay, r.Operations, r.RoutingJobs, r.Cycles, r.WallClock.Round(100*time.Millisecond))
	}
	tw.Flush()
}
