package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"meda/internal/assay"
)

func TestAlphabetAblation(t *testing.T) {
	rows, err := Alphabet()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Richer alphabets can only help (expected cycles non-increasing).
	for i := 1; i < len(rows); i++ {
		if rows[i].ExpectedCycles > rows[i-1].ExpectedCycles+1e-9 {
			t.Errorf("%s (%v) worse than %s (%v)",
				rows[i].Name, rows[i].ExpectedCycles, rows[i-1].Name, rows[i-1].ExpectedCycles)
		}
	}
	// And they grow the model.
	if rows[3].States <= rows[2].States {
		t.Error("morphing must enlarge the state space")
	}
	var buf bytes.Buffer
	RenderAlphabet(&buf, rows)
	if !strings.Contains(buf.String(), "cardinal-only") {
		t.Error("render missing variant")
	}
}

func TestHealthBitsSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultHealthBitsConfig(9)
	cfg.Bits = []int{1, 4}
	cfg.Trials = 2
	cfg.Executions = 3
	rows, err := HealthBits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CompletedRuns <= 0 || r.MeanLateCycles <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderHealthBits(&buf, rows)
	if !strings.Contains(buf.String(), "final-run cycles") {
		t.Error("render missing header")
	}
}

func TestRecoverySmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultRecoveryConfig(10)
	cfg.Assays = []assay.Benchmark{assay.CovidRAT}
	cfg.Trials = 3
	cfg.KMax = 400
	rows, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // three controllers × one assay
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]RecoveryRow{}
	for _, r := range rows {
		if r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Errorf("bad success rate: %+v", r)
		}
		byName[r.Controller] = r
	}
	for _, name := range []string{"baseline", "reactive", "adaptive"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("controller %s missing", name)
		}
	}
	// Only the reactive controller rolls back.
	if byName["baseline"].MeanRollbacks != 0 || byName["adaptive"].MeanRollbacks != 0 {
		t.Error("non-reactive controllers must not roll back")
	}
	var buf bytes.Buffer
	RenderRecovery(&buf, rows)
	if !strings.Contains(buf.String(), "reactive") {
		t.Error("render missing controller")
	}
}

func TestParallelTrialsOrderIndependence(t *testing.T) {
	got := make([]int, 16)
	err := parallelTrials(16, func(i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestParallelTrialsPropagatesError(t *testing.T) {
	err := parallelTrials(8, func(i int) error {
		if i == 5 {
			return errBoom
		}
		return nil
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
}

var errBoom = &boomErr{}

type boomErr struct{}

func (*boomErr) Error() string { return "boom" }

func TestTimeToResult(t *testing.T) {
	rows, err := TimeToResult(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Cycles <= 0 || r.WallClock <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		// 100 ms actuation dwell per cycle dominates.
		if r.WallClock < time.Duration(r.Cycles)*100*time.Millisecond {
			t.Errorf("%s: wall clock %v below actuation floor", r.Assay, r.WallClock)
		}
	}
	var buf bytes.Buffer
	RenderTTR(&buf, rows)
	if !strings.Contains(buf.String(), "wall clock") {
		t.Error("render missing header")
	}
}
