// Package exp contains one driver per table and figure of the paper's
// evaluation, each regenerating the corresponding rows or series from the
// simulation substrate. The drivers are deterministic given a seed; the
// cmd/medaexp tool renders them as text tables, and the repository-level
// benchmarks wrap them for `go test -bench`.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig2      — MC sensing waveforms and 2-bit codes
//	Fig3      — actuation correlation vs Manhattan distance
//	Fig5      — electrode capacitance growth (charge trapping / residual)
//	Fig6      — relative EWOD force decay and model fit
//	Fig7      — degradation D and observed health H vs actuation count
//	TableIV   — MO → RJ decomposition of the running example
//	Fig15     — probability of successful completion vs k_max
//	Fig16     — mean cycles under fault injection
//	TableV    — synthesis model sizes and runtimes
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"

	"meda/internal/fault"
	"meda/internal/geom"
	"meda/internal/sched"
	"meda/internal/sim"
)

// Router configuration for the drivers, set once from command-line flags
// before any experiment runs (not safe to change mid-experiment). The
// defaults build the synchronous, deterministic adaptive router.
var (
	routerWorkers   = -1 // negative: no background synthesis pool
	routerCacheSize = -1 // negative: default cache bound; 0 disables
)

// SetRouterConfig configures how experiment drivers build adaptive routers:
// workers >= 0 enables a background synthesis pool of that size (0 means
// GOMAXPROCS); cacheSize bounds the strategy cache (0 disables it, negative
// keeps the default). Call before running any driver.
func SetRouterConfig(workers, cacheSize int) {
	routerWorkers = workers
	routerCacheSize = cacheSize
}

// Concurrent-executor selection for the drivers, set once from command-line
// flags before any experiment runs.
var concurrentExec bool

// SetConcurrent makes every subsequent experiment driver execute assays on
// the concurrent executor (all ready operations routed at once) instead of
// the sequential one-hazard-zone-at-a-time path. Call before running any
// driver.
func SetConcurrent(on bool) {
	concurrentExec = on
}

// Soft-fault injection for the drivers, set once from command-line flags
// before any experiment runs. The zero plan disables injection.
var faultPlan fault.Plan

// SetFaultInjection enables seed-driven soft-fault injection (actuation,
// sensing, control-plane) for every subsequent experiment driver. Drivers
// pick the plan up through baseSimConfig, and adaptiveRouter wraps routers
// in the graceful-degradation ladder so injected synthesis failures fall
// back instead of aborting. Call before running any driver.
func SetFaultInjection(p fault.Plan) {
	faultPlan = p
}

// baseSimConfig is the simulation config every driver starts from: the
// defaults, plus the configured soft-fault plan when injection is enabled.
func baseSimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Concurrent = concurrentExec
	if faultPlan.Enabled() {
		cfg = cfg.WithFaults(faultPlan)
	}
	return cfg
}

// newAdaptive builds an adaptive router per the configured parallelism.
func newAdaptive() *sched.Adaptive {
	if routerWorkers < 0 {
		a := sched.NewAdaptive()
		if routerCacheSize == 0 {
			a.Cache = nil
		} else if routerCacheSize > 0 {
			a.Cache = sched.NewCache(routerCacheSize)
		}
		return a
	}
	return sched.NewAdaptiveParallel(routerWorkers, routerCacheSize)
}

// adaptiveRouter is newAdaptive plus the degradation ladder: under fault
// injection the adaptive router is wrapped in a Fallback so injected
// synthesis timeouts retry and then fall back to the baseline router.
func adaptiveRouter() sched.Router {
	a := newAdaptive()
	if faultPlan.Enabled() {
		return sched.NewFallback(a, sched.NewBaseline())
	}
	return a
}

// newTable returns a tabwriter for aligned experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// fprintf writes one formatted row, ignoring write errors (experiment
// renderers write to in-memory or terminal sinks).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// parallelTrials runs fn(0..n-1) on up to GOMAXPROCS workers. Each trial
// must be self-contained (its own chip, router and random stream); results
// are written into caller-owned, trial-indexed slots so aggregation stays
// deterministic. The first error wins.
func parallelTrials(n int, fn func(trial int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return first
}

// geomRect is a shorthand for building rectangles in experiment drivers.
func geomRect(xa, ya, xb, yb int) geom.Rect {
	return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb}
}
