package dsl

import (
	"strings"
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/plan"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
)

const dilution = `
# two-stage serial dilution
assay my-dilution

sample  = dis 16
buffer0 = dis 16
waste0, carried0 = dlt sample buffer0
dsc waste0
buffer1 = dis 16
waste1, carried1 = dlt carried0 buffer1
dsc waste1
result  = mag carried1 hold=20
out result
`

func TestParseDilution(t *testing.T) {
	g, err := ParseString(dilution)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "my-dilution" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Ops) != 9 {
		t.Fatalf("ops = %d, want 9", len(g.Ops))
	}
	counts := map[assay.Op]int{}
	for _, op := range g.Ops {
		counts[op.Type]++
	}
	if counts[assay.Dlt] != 2 || counts[assay.Dis] != 3 || counts[assay.Dsc] != 2 ||
		counts[assay.Mag] != 1 || counts[assay.Out] != 1 {
		t.Errorf("op mix = %v", counts)
	}
	// mag hold option parsed.
	for _, op := range g.Ops {
		if op.Type == assay.Mag && op.Hold != 20 {
			t.Errorf("mag hold = %d, want 20", op.Hold)
		}
	}
}

// TestParsedAssayExecutes: a DSL protocol places and runs end to end.
func TestParsedAssayExecutes(t *testing.T) {
	g, err := ParseString(dilution)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := plan.NewPlacer(60, 30).Place(g)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := route.Compile(placed, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	src := randx.New(3)
	c, err := chip.New(cfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewRunner(sim.DefaultConfig(), c, sched.NewAdaptive(), src.Split("sim"))
	exec, err := runner.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("DSL assay failed: %+v", exec)
	}
}

func TestParseSplitAndMix(t *testing.T) {
	src := `
assay split-mix
p = dis area=9
l, r = spt p
rg = dis 9
m = mix l rg
out m
out r
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) != 6 {
		t.Fatalf("ops = %d, want 6", len(g.Ops))
	}
	if g.Ops[1].Type != assay.Spt || g.Ops[3].Type != assay.Mix {
		t.Error("op order wrong")
	}
	// mix consumes the split's first output and the fresh dispense.
	if g.Ops[3].Pre[0] != 1 || g.Ops[3].Pre[1] != 2 {
		t.Errorf("mix pre = %v", g.Ops[3].Pre)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown op", "x = frob 16\nout x"},
		{"unknown droplet", "out ghost"},
		{"double consume", "a = dis 16\nout a\ndsc a"},
		{"unconsumed", "a = dis 16\nb = dis 16\nout a"},
		{"dis without area", "a = dis\nout a"},
		{"mix arity", "a = dis 16\nm = mix a\nout m"},
		{"spt one name", "a = dis 16\nl = spt a\nout l"},
		{"duplicate name", "a = dis 16\na = dis 16\nout a\nout a"},
		{"out with name", "a = dis 16\nb = out a"},
		{"hold on mix", "a = dis 16\nb = dis 16\nm = mix a b hold=5\nout m"},
		{"area on mag", "a = dis 16\nm = mag a area=5\nout m"},
		{"bad option value", "a = dis 16\nm = mag a hold=soon\nout m"},
		{"keyword as name", "mix = dis 16\nout mix"},
		{"numeric name", "7 = dis 16\nout 7"},
		{"duplicate header", "assay a\nassay b\nx = dis 16\nout x"},
		{"empty header", "assay \nx = dis 16\nout x"},
		{"empty", "\n# only comments\n"},
		{"empty name", ", b = spt q"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: accepted:\n%s", c.name, c.src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "  assay   padded  \n\n  # full comment line\n a = dis 16   # trailing comment\nout a\n"
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "padded" || len(g.Ops) != 2 {
		t.Errorf("g = %+v", g)
	}
}

func TestMagDefaultHold(t *testing.T) {
	g, err := ParseString("a = dis 16\nm = mag a\nout m")
	if err != nil {
		t.Fatal(err)
	}
	if g.Ops[1].Hold <= 0 {
		t.Error("mag without hold= must get a positive default")
	}
}

func TestParseReader(t *testing.T) {
	g, err := Parse(strings.NewReader(dilution))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) == 0 {
		t.Fatal("empty graph from reader")
	}
}
