// Package dsl parses a small textual bioassay description language into the
// planner's location-free sequencing graphs, so protocols can be written,
// versioned and shared without writing Go. The format is line-oriented:
//
//	# serial dilution, two stages
//	assay my-dilution
//
//	sample  = dis 16
//	buffer0 = dis 16
//	waste0, carried0 = dlt sample buffer0
//	dsc waste0
//	buffer1 = dis 16
//	waste1, carried1 = dlt carried0 buffer1
//	dsc waste1
//	result  = mag carried1 hold=20
//	out result
//
// Each droplet-producing operation binds one name per output droplet
// (`a = mix x y`, `l, r = spt p`); `out` and `dsc` consume a droplet without
// producing one. `dis` takes the droplet area in cells; `mag` takes an
// optional `hold=<cycles>` detention time. `#` starts a comment. Every
// droplet must be consumed exactly once, and names must be defined before
// use — which also guarantees the graph is in topological order.
package dsl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"meda/internal/assay"
	"meda/internal/plan"
)

// Parse reads an assay description and returns the location-free graph
// (feed it to plan.NewPlacer to obtain a placed, runnable assay).
func Parse(r io.Reader) (plan.Graph, error) {
	var g plan.Graph
	names := map[string]int{} // droplet name → producer op index
	consumed := map[string]bool{}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(&g, names, consumed, line); err != nil {
			return plan.Graph{}, fmt.Errorf("dsl: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return plan.Graph{}, fmt.Errorf("dsl: %w", err)
	}
	for name := range names {
		if !consumed[name] {
			return plan.Graph{}, fmt.Errorf("dsl: droplet %q is never consumed (out/dsc it, or feed it to an operation)", name)
		}
	}
	if len(g.Ops) == 0 {
		return plan.Graph{}, fmt.Errorf("dsl: empty assay")
	}
	if err := g.Validate(); err != nil {
		return plan.Graph{}, err
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (plan.Graph, error) { return Parse(strings.NewReader(s)) }

var opByName = map[string]assay.Op{
	"dis": assay.Dis,
	"out": assay.Out,
	"dsc": assay.Dsc,
	"mix": assay.Mix,
	"spt": assay.Spt,
	"dlt": assay.Dlt,
	"mag": assay.Mag,
}

func parseLine(g *plan.Graph, names map[string]int, consumed map[string]bool, line string) error {
	// Header: "assay <name>".
	if rest, ok := strings.CutPrefix(line, "assay "); ok {
		if g.Name != "" {
			return fmt.Errorf("duplicate assay header")
		}
		g.Name = strings.TrimSpace(rest)
		if g.Name == "" {
			return fmt.Errorf("assay header needs a name")
		}
		return nil
	}

	// Either "names = op args" or "op args" (for out/dsc).
	var outNames []string
	rhs := line
	if i := strings.IndexByte(line, '='); i >= 0 {
		for _, n := range strings.Split(line[:i], ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				return fmt.Errorf("empty output name")
			}
			if !validName(n) {
				return fmt.Errorf("invalid droplet name %q", n)
			}
			if _, dup := names[n]; dup {
				return fmt.Errorf("droplet %q already defined", n)
			}
			outNames = append(outNames, n)
		}
		rhs = strings.TrimSpace(line[i+1:])
	}
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return fmt.Errorf("missing operation")
	}
	op, ok := opByName[fields[0]]
	if !ok {
		return fmt.Errorf("unknown operation %q (want dis/out/dsc/mix/spt/dlt/mag)", fields[0])
	}
	args := fields[1:]

	node := plan.Op{Type: op}
	in, out := op.Arity()
	if len(outNames) != out {
		return fmt.Errorf("%s produces %d droplet(s), %d name(s) given", fields[0], out, len(outNames))
	}

	// Consume key=value options from the tail.
	for len(args) > 0 {
		kv := args[len(args)-1]
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			break
		}
		key, val := kv[:eq], kv[eq+1:]
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("option %s: %v", kv, err)
		}
		switch key {
		case "hold":
			if op != assay.Mag {
				return fmt.Errorf("hold= applies to mag only")
			}
			node.Hold = n
		case "area":
			if op != assay.Dis {
				return fmt.Errorf("area= applies to dis only")
			}
			node.Area = n
		default:
			return fmt.Errorf("unknown option %q", key)
		}
		args = args[:len(args)-1]
	}

	// dis accepts its area as a bare argument too: "dis 16".
	if op == assay.Dis && len(args) == 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("dis area: %v", err)
		}
		node.Area = n
		args = nil
	}
	if op == assay.Dis && node.Area < 1 {
		return fmt.Errorf("dis needs a droplet area (e.g. \"x = dis 16\")")
	}

	// Remaining arguments are input droplet names.
	if len(args) != in {
		return fmt.Errorf("%s consumes %d droplet(s), %d given", fields[0], in, len(args))
	}
	for _, a := range args {
		producer, ok := names[a]
		if !ok {
			return fmt.Errorf("unknown droplet %q", a)
		}
		if consumed[a] {
			return fmt.Errorf("droplet %q already consumed", a)
		}
		consumed[a] = true
		node.Pre = append(node.Pre, producer)
	}

	id := len(g.Ops)
	g.Ops = append(g.Ops, node)
	for _, n := range outNames {
		names[n] = id
	}
	if op == assay.Mag && node.Hold == 0 {
		g.Ops[id].Hold = 10 // a sensing hold is never instantaneous
	}
	return nil
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '-' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	// Must not collide with an operation keyword or parse as a number.
	if _, isOp := opByName[s]; isOp {
		return false
	}
	if _, err := strconv.Atoi(s); err == nil {
		return false
	}
	return true
}
