package dsl

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the assay parser: it must never panic,
// and anything it accepts must be a valid, planner-ready graph.
func FuzzParse(f *testing.F) {
	f.Add(dilution)
	f.Add("assay x\na = dis 16\nout a\n")
	f.Add("a = dis 16\nl, r = spt a\nout l\nout r")
	f.Add("x = mix y z")
	f.Add("= dis 16")
	f.Add("assay\n")
	f.Add(strings.Repeat("a = dis 16\n", 4))
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput:\n%s", verr, src)
		}
	})
}
