package dsl

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the assay parser: it must never panic,
// and anything it accepts must be a valid, planner-ready graph.
func FuzzParse(f *testing.F) {
	f.Add(dilution)
	f.Add("assay x\na = dis 16\nout a\n")
	f.Add("a = dis 16\nl, r = spt a\nout l\nout r")
	f.Add("x = mix y z")
	f.Add("= dis 16")
	f.Add("assay\n")
	f.Add(strings.Repeat("a = dis 16\n", 4))
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput:\n%s", verr, src)
		}
	})
}

// FuzzParseStability: parsing is a pure function — the same source must
// yield the same graph (or the same error disposition) on every call. A
// divergence means the parser leaked state between runs, which would break
// the byte-identical-trace determinism guarantee upstream.
func FuzzParseStability(f *testing.F) {
	f.Add(dilution)
	f.Add("assay x\na = dis 16\nout a\n")
	f.Add("a = dis 16\nl, r = spt a\nout l\nout r")
	f.Add("a = dis 9\nb = dis 9\nm = mix a b\nout m\n")
	f.Fuzz(func(t *testing.T, src string) {
		g1, err1 := ParseString(src)
		g2, err2 := ParseString(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse disposition differs between runs: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(g1, g2) {
			t.Fatalf("same source parsed to different graphs:\n%+v\nvs\n%+v", g1, g2)
		}
	})
}
