package route

import (
	"math"
	"testing"
	"testing/quick"

	"meda/internal/assay"
	"meda/internal/geom"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func TestSizeFor(t *testing.T) {
	cases := []struct {
		area, w, h int
		relErr     float64
	}{
		{16, 4, 4, 0},
		{32, 6, 5, 0.0625}, // Table IV: 32 → 6×5, error 6.3%
		{20, 5, 4, 0},
		{9, 3, 3, 0},
		{2, 2, 1, 0},
		{1, 1, 1, 0},
		{0, 1, 1, 0},
		{25, 5, 5, 0},
		{36, 6, 6, 0},
	}
	for _, c := range cases {
		w, h, e := SizeFor(c.area)
		if w != c.w || h != c.h {
			t.Errorf("SizeFor(%d) = %d×%d, want %d×%d", c.area, w, h, c.w, c.h)
		}
		if math.Abs(e-c.relErr) > 1e-9 {
			t.Errorf("SizeFor(%d) error = %v, want %v", c.area, e, c.relErr)
		}
	}
}

func TestSizeForProperties(t *testing.T) {
	f := func(a16 uint16) bool {
		area := int(a16%200) + 1
		w, h, e := SizeFor(area)
		if w < h || w-h > 1 {
			return false // |w−h| ≤ 1 with wide orientation
		}
		if e < 0 || e > 0.5 {
			return false
		}
		// No (w', h') with |w'−h'| ≤ 1 does strictly better.
		got := math.Abs(float64(w*h - area))
		for hh := 1; hh*hh <= area+2*hh+1; hh++ {
			for _, ww := range []int{hh, hh + 1} {
				if math.Abs(float64(ww*hh-area)) < got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZone(t *testing.T) {
	// M1's hazard from Table IV: goal (16,1,19,4) → (13,1,22,7).
	g := rect(16, 1, 19, 4)
	if z := Zone(g, g, 60, 30); z != rect(13, 1, 22, 7) {
		t.Errorf("Zone = %v, want (13,1,22,7)", z)
	}
	// RJ3.0: start (16,1,19,4), goal (9,14,12,17) → (6,1,22,20).
	if z := Zone(rect(16, 1, 19, 4), rect(9, 14, 12, 17), 60, 30); z != rect(6, 1, 22, 20) {
		t.Errorf("Zone = %v, want (6,1,22,20)", z)
	}
}

func TestZoneContainsEndpointsProperty(t *testing.T) {
	f := func(xa, ya, xb, yb uint8) bool {
		s := rect(int(xa%50)+1, int(ya%24)+1, int(xa%50)+4, int(ya%24)+4)
		g := rect(int(xb%50)+1, int(yb%24)+1, int(xb%50)+4, int(yb%24)+4)
		z := Zone(s, g, 60, 30)
		return z.ContainsRect(s) && z.ContainsRect(g) &&
			z.XA >= 1 && z.YA >= 1 && z.XB <= 60 && z.YB <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompileTableIV reproduces Table IV end to end: the four-operation
// example bioassay on a 60×30 chip.
func TestCompileTableIV(t *testing.T) {
	a := &assay.Assay{Name: "table-iv", MOs: []assay.MO{
		{ID: 0, Type: assay.Dis, Loc: []assay.Point{{X: 17.5, Y: 2.5}}, Area: 16},
		{ID: 1, Type: assay.Dis, Loc: []assay.Point{{X: 17.5, Y: 28.5}}, Area: 16},
		{ID: 2, Type: assay.Mix, Pre: []int{0, 1}, Loc: []assay.Point{{X: 10.5, Y: 15.5}}},
		{ID: 3, Type: assay.Mag, Pre: []int{2}, Loc: []assay.Point{{X: 40.5, Y: 15.5}}, Hold: 10},
		{ID: 4, Type: assay.Out, Pre: []int{3}, Loc: []assay.Point{{X: 58.5, Y: 15.5}}},
	}}
	p, err := Compile(a, 60, 30)
	if err != nil {
		t.Fatal(err)
	}

	// M1 (our M0): dis → RJ (0, (16,1,19,4), (13,1,22,7)).
	j := p.MOs[0].Jobs[0]
	if !j.Dispense || j.Start != geom.ZeroRect {
		t.Error("dis job must dispense from off-chip")
	}
	if j.Goal != rect(16, 1, 19, 4) {
		t.Errorf("M1 goal = %v, want (16,1,19,4)", j.Goal)
	}
	if j.Hazard != rect(13, 1, 22, 7) {
		t.Errorf("M1 hazard = %v, want (13,1,22,7)", j.Hazard)
	}

	// M2: goal (16,27,19,30), hazard (13,24,22,30).
	j = p.MOs[1].Jobs[0]
	if j.Goal != rect(16, 27, 19, 30) || j.Hazard != rect(13, 24, 22, 30) {
		t.Errorf("M2 = %+v", j)
	}

	// M3 mix: RJ3.0 (16,1,19,4)→(9,14,12,17) hazard (6,1,22,20);
	// RJ3.1 (16,27,19,30)→(9,14,12,17) hazard (6,11,22,30).
	j0, j1 := p.MOs[2].Jobs[0], p.MOs[2].Jobs[1]
	if j0.Start != rect(16, 1, 19, 4) || j0.Goal != rect(9, 14, 12, 17) || j0.Hazard != rect(6, 1, 22, 20) {
		t.Errorf("RJ3.0 = %+v", j0)
	}
	if j1.Start != rect(16, 27, 19, 30) || j1.Goal != rect(9, 14, 12, 17) || j1.Hazard != rect(6, 11, 22, 30) {
		t.Errorf("RJ3.1 = %+v", j1)
	}
	// Merged droplet: area 32 → 6×5 at (8,14,13,18), size error 6.25%.
	if p.MOs[2].MergedRect != rect(8, 14, 13, 18) {
		t.Errorf("merged rect = %v, want (8,14,13,18)", p.MOs[2].MergedRect)
	}
	if math.Abs(p.MOs[2].SizeErr-0.0625) > 1e-9 {
		t.Errorf("M3 size error = %v, want 6.25%%", p.MOs[2].SizeErr)
	}

	// M4 mag: (8,14,13,18) → (38,14,43,18), hazard (5,11,46,21).
	j = p.MOs[3].Jobs[0]
	if j.Start != rect(8, 14, 13, 18) || j.Goal != rect(38, 14, 43, 18) || j.Hazard != rect(5, 11, 46, 21) {
		t.Errorf("M4 = %+v", j)
	}
	if j.Name() != "RJ3.0" {
		t.Errorf("job name = %q", j.Name())
	}
}

func TestEntryRect(t *testing.T) {
	// Goal near the south edge enters from the south.
	g := rect(16, 5, 19, 8)
	if e := EntryRect(g, 60, 30); e != rect(16, 1, 19, 4) {
		t.Errorf("south entry = %v", e)
	}
	// Goal near the east edge enters from the east.
	g = rect(55, 14, 58, 17)
	if e := EntryRect(g, 60, 30); e != rect(57, 14, 60, 17) {
		t.Errorf("east entry = %v", e)
	}
	// Goal already touching an edge is its own entry.
	g = rect(16, 1, 19, 4)
	if e := EntryRect(g, 60, 30); e != g {
		t.Errorf("edge goal entry = %v", e)
	}
}

func TestEntryRectOnChipProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		g := rect(int(x%56)+1, int(y%26)+1, int(x%56)+4, int(y%26)+4)
		e := EntryRect(g, 60, 30)
		onEdge := e.XA == 1 || e.XB == 60 || e.YA == 1 || e.YB == 30
		return onEdge && e.Width() == 4 && e.Height() == 4 &&
			e.XA >= 1 && e.YA >= 1 && e.XB <= 60 && e.YB <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitRects(t *testing.T) {
	parent := rect(8, 14, 13, 18) // 6×5, 32 cells
	r0, r1 := SplitRects(parent, 16, 16, 60, 30)
	if r0.Overlaps(r1) {
		t.Errorf("split halves overlap: %v %v", r0, r1)
	}
	if r0.Area() != 16 || r1.Area() != 16 {
		t.Errorf("split areas = %d, %d", r0.Area(), r1.Area())
	}
	// Halves near the parent.
	cx, cy := parent.Center()
	for _, r := range []geom.Rect{r0, r1} {
		rx, ry := r.Center()
		if math.Abs(rx-cx) > 6 || math.Abs(ry-cy) > 6 {
			t.Errorf("half %v too far from parent %v", r, parent)
		}
	}
}

func TestSplitRectsAtChipEdge(t *testing.T) {
	parent := rect(1, 1, 6, 5) // against the south-west corner
	r0, r1 := SplitRects(parent, 16, 16, 60, 30)
	bounds := rect(1, 1, 60, 30)
	if !bounds.ContainsRect(r0) || !bounds.ContainsRect(r1) {
		t.Errorf("split halves off-chip: %v %v", r0, r1)
	}
	if r0.Overlaps(r1) {
		t.Errorf("split halves overlap at edge: %v %v", r0, r1)
	}
}

func TestSplitRectsVertical(t *testing.T) {
	parent := rect(10, 10, 13, 17) // 4×8: splits north–south
	r0, r1 := SplitRects(parent, 16, 16, 60, 30)
	if r0.Overlaps(r1) {
		t.Errorf("vertical split halves overlap: %v %v", r0, r1)
	}
	if !(r0.YB < r1.YA || r1.YB < r0.YA) {
		t.Errorf("vertical split should separate along y: %v %v", r0, r1)
	}
}

// TestCompileAllBenchmarks: every benchmark compiles on the default chip and
// every job's hazard contains its start and goal.
func TestCompileAllBenchmarks(t *testing.T) {
	l := assay.Layout{W: 60, H: 30}
	for _, bm := range []assay.Benchmark{
		assay.MasterMix, assay.CEP, assay.SerialDilution, assay.NuIP,
		assay.CovidRAT, assay.CovidPCR, assay.ChIP, assay.InVitro, assay.GeneExpression,
	} {
		p, err := Compile(bm.Build(l, 16), 60, 30)
		if err != nil {
			t.Errorf("%v: %v", bm, err)
			continue
		}
		if p.TotalJobs() == 0 {
			t.Errorf("%v: no routing jobs", bm)
		}
		for _, cm := range p.MOs {
			for _, j := range cm.Jobs {
				if !j.Hazard.ContainsRect(j.Goal) {
					t.Errorf("%v %s: hazard %v misses goal %v", bm, j.Name(), j.Hazard, j.Goal)
				}
				if !j.Dispense && !j.Hazard.ContainsRect(j.Start) {
					t.Errorf("%v %s: hazard %v misses start %v", bm, j.Name(), j.Hazard, j.Start)
				}
				if j.Goal.Area() < 1 {
					t.Errorf("%v %s: empty goal", bm, j.Name())
				}
			}
		}
	}
}

// TestCompileDltPhases: a dilution operation emits two phase-0 jobs (mix
// inputs) and two phase-1 jobs (split outputs), per Alg. 1.
func TestCompileDltPhases(t *testing.T) {
	l := assay.Layout{W: 60, H: 30}
	p, err := Compile(assay.SerialDilution.Build(l, 16), 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cm := range p.MOs {
		if cm.MO.Type != assay.Dlt {
			continue
		}
		found = true
		if len(cm.Jobs) != 4 {
			t.Fatalf("dlt has %d jobs, want 4", len(cm.Jobs))
		}
		if cm.Jobs[0].Phase != 0 || cm.Jobs[1].Phase != 0 || cm.Jobs[2].Phase != 1 || cm.Jobs[3].Phase != 1 {
			t.Errorf("dlt phases = %d,%d,%d,%d", cm.Jobs[0].Phase, cm.Jobs[1].Phase, cm.Jobs[2].Phase, cm.Jobs[3].Phase)
		}
		if len(cm.OutRects) != 2 || len(cm.OutAreas) != 2 {
			t.Error("dlt must produce two outputs")
		}
		if cm.OutAreas[0]+cm.OutAreas[1] != 32 {
			t.Errorf("dlt output areas = %v, want sum 32", cm.OutAreas)
		}
	}
	if !found {
		t.Fatal("serial dilution has no dlt")
	}
}

// TestCompileConservesArea: along any mix, droplet area is additive; along
// any split, it divides into halves differing by at most one cell.
func TestCompileConservesArea(t *testing.T) {
	l := assay.Layout{W: 60, H: 30}
	p, err := Compile(assay.NuIP.Build(l, 16), 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range p.MOs {
		switch cm.MO.Type {
		case assay.Spt:
			if cm.OutAreas[0]+cm.OutAreas[1] != areaOfInput(p, cm) {
				t.Errorf("split does not conserve area: %v", cm.OutAreas)
			}
			if abs(cm.OutAreas[0]-cm.OutAreas[1]) > 1 {
				t.Errorf("split halves unbalanced: %v", cm.OutAreas)
			}
		case assay.Mix:
			if cm.OutAreas[0] != areaOfInputs(p, cm) {
				t.Errorf("mix does not sum areas: %d", cm.OutAreas[0])
			}
		}
	}
}

func areaOfInput(p *Plan, cm CompiledMO) int {
	pre := cm.MO.Pre[0]
	// Find which slot this MO claimed: recompute by searching consumers.
	slot := 0
	for i := 0; i < cm.MO.ID; i++ {
		for _, q := range p.MOs[i].MO.Pre {
			if q == pre {
				slot++
			}
		}
	}
	return p.MOs[pre].OutAreas[slot]
}

func areaOfInputs(p *Plan, cm CompiledMO) int {
	total := 0
	for j, pre := range cm.MO.Pre {
		slot := 0
		for i := 0; i < cm.MO.ID; i++ {
			for _, q := range p.MOs[i].MO.Pre {
				if q == pre {
					slot++
				}
			}
		}
		// Count earlier claims within this same MO.
		for k := 0; k < j; k++ {
			if cm.MO.Pre[k] == pre {
				slot++
			}
		}
		total += p.MOs[pre].OutAreas[slot]
	}
	return total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestCompileRejectsInvalidAssay(t *testing.T) {
	bad := &assay.Assay{Name: "bad", MOs: []assay.MO{
		{ID: 0, Type: assay.Mix, Pre: []int{0, 0}, Loc: []assay.Point{{X: 5, Y: 5}}},
	}}
	if _, err := Compile(bad, 60, 30); err == nil {
		t.Error("invalid assay compiled")
	}
}

func TestCompileRejectsOversizedDroplet(t *testing.T) {
	a := &assay.Assay{Name: "big", MOs: []assay.MO{
		{ID: 0, Type: assay.Dis, Loc: []assay.Point{{X: 3, Y: 3}}, Area: 400},
		{ID: 1, Type: assay.Out, Pre: []int{0}, Loc: []assay.Point{{X: 5, Y: 3}}},
	}}
	if _, err := Compile(a, 10, 10); err == nil {
		t.Error("droplet larger than chip accepted")
	}
}
