// Package route implements the decomposition of microfluidic operations into
// single-droplet routing jobs (Sec. VI-B): the RJ helper of Alg. 1, the ZONE
// hazard-bound computation, and the droplet sizing rule (minimum area error
// subject to |w − h| ≤ 1). Compile runs the helper over a whole bioassay,
// resolving droplet sizes and resting locations along the dataflow, and
// reproduces Table IV for the paper's running example.
package route

import (
	"fmt"
	"math"

	"meda/internal/assay"
	"meda/internal/geom"
)

// HazardMargin is the safety margin, in microelectrodes, added around the
// start and goal when computing a routing job's hazard bounds (the paper
// uses 3 MCs on each of the four sides to prevent accidental merging).
const HazardMargin = 3

// RJ is a single-droplet routing job: move a droplet from Start to Goal
// while staying within Hazard.
type RJ struct {
	// MO is the owning operation's ID; Index is the job's index within the
	// operation (the paper writes RJ3.1 for MO 3, index 1).
	MO, Index int
	// Phase orders jobs within one operation: phase 0 jobs run first
	// (e.g. a dilution's two mix-input routes), phase 1 jobs run after
	// (the post-split output routes).
	Phase int
	// Start is δs; the zero rectangle for dispensing jobs, whose droplet
	// enters from the chip edge.
	Start geom.Rect
	// Goal is δg: the droplet must come to lie within this rectangle.
	Goal geom.Rect
	// Hazard is δh: the droplet must never leave this rectangle.
	Hazard geom.Rect
	// Dispense marks jobs whose droplet enters from off-chip.
	Dispense bool
	// Exit marks jobs whose droplet leaves the chip on completion
	// (out/dsc operations).
	Exit bool
}

// Name returns the paper-style job name, e.g. "RJ3.1".
func (r RJ) Name() string { return fmt.Sprintf("RJ%d.%d", r.MO, r.Index) }

// SizeFor returns the droplet dimensions (w, h) for a target area: the pair
// with |w−h| ≤ 1 minimizing the area error, preferring the wide orientation
// (w ≥ h), per Sec. VI-B. The second return is the relative area error
// (e.g. A=32 → 6×5, error 0.0625, matching Table IV's 6.3%).
func SizeFor(area int) (w, h int, relErr float64) {
	if area < 1 {
		return 1, 1, 0
	}
	base := int(math.Sqrt(float64(area)))
	type cand struct{ w, h int }
	cands := []cand{{base, base}, {base + 1, base}, {base + 1, base + 1}}
	best := cands[0]
	bestErr := math.Abs(float64(best.w*best.h - area))
	for _, c := range cands[1:] {
		if e := math.Abs(float64(c.w*c.h - area)); e < bestErr {
			best, bestErr = c, e
		}
	}
	return best.w, best.h, bestErr / float64(area)
}

// Zone computes the hazard bounds δh = ZONE(δs, δg) on a W×H chip: the
// bounding box of start and goal expanded by the safety margin, clipped to
// the chip.
func Zone(s, g geom.Rect, w, h int) geom.Rect {
	u := s.Union(g).Expand(HazardMargin)
	clipped, ok := u.Intersect(geom.Rect{XA: 1, YA: 1, XB: w, YB: h})
	if !ok {
		return geom.Rect{XA: 1, YA: 1, XB: w, YB: h}
	}
	return clipped
}

// EntryRect returns the on-chip rectangle where a dispensed droplet enters:
// the goal rectangle translated to touch the nearest chip edge, from which
// the dispense job routes perpendicular to that edge (Sec. VI-B).
func EntryRect(goal geom.Rect, w, h int) geom.Rect {
	cx, cy := goal.Center()
	// Distances to the four edges.
	dW := cx - 1
	dE := float64(w) - cx
	dS := cy - 1
	dN := float64(h) - cy
	minD := math.Min(math.Min(dW, dE), math.Min(dS, dN))
	switch minD {
	case dW:
		return goal.Translate(1-goal.XA, 0)
	case dE:
		return goal.Translate(w-goal.XB, 0)
	case dS:
		return goal.Translate(0, 1-goal.YA)
	default:
		return goal.Translate(0, h-goal.YB)
	}
}

// SplitRects places the two halves of a split droplet: the parent rectangle
// is divided along its wider axis into two adjacent rectangles sized for the
// given areas, clamped to the chip.
func SplitRects(parent geom.Rect, area0, area1, w, h int) (geom.Rect, geom.Rect) {
	w0, h0, _ := SizeFor(area0)
	w1, h1, _ := SizeFor(area1)
	cx, cy := parent.Center()
	var r0, r1 geom.Rect
	if parent.Width() >= parent.Height() {
		// Split east–west: halves sit side by side around the center.
		r0 = geom.RectAround(cx-float64(w0+1)/2, cy, w0, h0)
		r1 = geom.RectAround(cx+float64(w1+1)/2, cy, w1, h1)
	} else {
		r0 = geom.RectAround(cx, cy-float64(h0+1)/2, w0, h0)
		r1 = geom.RectAround(cx, cy+float64(h1+1)/2, w1, h1)
	}
	r0 = r0.Clamp(w, h)
	r1 = r1.Clamp(w, h)
	if r0.Overlaps(r1) {
		// Clamping at a chip edge can push the halves together; separate
		// them along the split axis as a last resort.
		if parent.Width() >= parent.Height() {
			r1 = r1.Translate(r0.XB-r1.XA+1, 0).Clamp(w, h)
		} else {
			r1 = r1.Translate(0, r0.YB-r1.YA+1).Clamp(w, h)
		}
	}
	return r0, r1
}

// CompiledMO is one operation with its resolved droplet geometry and routing
// jobs.
type CompiledMO struct {
	MO assay.MO
	// Jobs lists the operation's routing jobs in phase order.
	Jobs []RJ
	// InRects are the resting rectangles of the input droplets.
	InRects []geom.Rect
	// InSlots identifies each input droplet as (producer MO id, output
	// slot), resolved by the static claim order (consumers claim producer
	// outputs in MO order); the simulator uses the same mapping.
	InSlots [][2]int
	// OutRects are the resting rectangles of the output droplets (where
	// successor operations pick them up).
	OutRects []geom.Rect
	// OutAreas are the droplet areas of the outputs.
	OutAreas []int
	// MergedRect is the resting rectangle of the merged droplet for
	// mix/dlt operations (the zero rectangle otherwise).
	MergedRect geom.Rect
	// SizeErr is the relative area error of the operation's droplet
	// sizing (Table IV's "Size Error" column).
	SizeErr float64
}

// Plan is a compiled bioassay: every operation decorated with droplet
// geometry and routing jobs on a W×H chip.
type Plan struct {
	Assay *assay.Assay
	W, H  int
	MOs   []CompiledMO
}

// Compile runs the RJ helper (Alg. 1) over a bioassay: it resolves droplet
// areas along the dataflow (mix sums, split halves), sizes and places every
// droplet, and emits each operation's routing jobs.
func Compile(a *assay.Assay, w, h int) (*Plan, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Assay: a, W: w, H: h, MOs: make([]CompiledMO, len(a.MOs))}
	// slot claims: consumers of an MO's outputs claim slots in MO order.
	nextSlot := make([]int, len(a.MOs))

	rectAt := func(loc assay.Point, area int) (geom.Rect, float64, error) {
		dw, dh, relErr := SizeFor(area)
		if dw > w || dh > h {
			return geom.ZeroRect, 0, fmt.Errorf("route: %d×%d droplet does not fit the %d×%d chip", dw, dh, w, h)
		}
		r := geom.RectAround(loc.X, loc.Y, dw, dh).Clamp(w, h)
		if !(geom.Rect{XA: 1, YA: 1, XB: w, YB: h}).ContainsRect(r) {
			return geom.ZeroRect, 0, fmt.Errorf("route: %d×%d droplet at (%v,%v) does not fit the %d×%d chip",
				dw, dh, loc.X, loc.Y, w, h)
		}
		return r, relErr, nil
	}

	for i, mo := range a.MOs {
		cm := &p.MOs[i]
		cm.MO = mo
		// Resolve inputs.
		inAreas := make([]int, len(mo.Pre))
		cm.InRects = make([]geom.Rect, len(mo.Pre))
		cm.InSlots = make([][2]int, len(mo.Pre))
		for j, pre := range mo.Pre {
			slot := nextSlot[pre]
			nextSlot[pre]++
			src := &p.MOs[pre]
			if slot >= len(src.OutRects) {
				return nil, fmt.Errorf("route: M%d consumes missing output %d of M%d", i, slot, pre)
			}
			cm.InRects[j] = src.OutRects[slot]
			cm.InSlots[j] = [2]int{pre, slot}
			inAreas[j] = src.OutAreas[slot]
		}

		switch mo.Type {
		case assay.Dis:
			goal, relErr, err := rectAt(mo.Loc[0], mo.Area)
			if err != nil {
				return nil, err
			}
			cm.SizeErr = relErr
			cm.OutRects = []geom.Rect{goal}
			cm.OutAreas = []int{mo.Area}
			cm.Jobs = []RJ{{
				MO: i, Index: 0,
				Start:    geom.ZeroRect,
				Goal:     goal,
				Hazard:   Zone(goal, goal, w, h),
				Dispense: true,
			}}

		case assay.Out, assay.Dsc:
			goal, relErr, err := rectAt(mo.Loc[0], inAreas[0])
			if err != nil {
				return nil, err
			}
			cm.SizeErr = relErr
			cm.Jobs = []RJ{{
				MO: i, Index: 0,
				Start:  cm.InRects[0],
				Goal:   goal,
				Hazard: Zone(cm.InRects[0], goal, w, h),
				Exit:   true,
			}}

		case assay.Mag:
			goal, relErr, err := rectAt(mo.Loc[0], inAreas[0])
			if err != nil {
				return nil, err
			}
			cm.SizeErr = relErr
			cm.OutRects = []geom.Rect{goal}
			cm.OutAreas = []int{inAreas[0]}
			cm.Jobs = []RJ{{
				MO: i, Index: 0,
				Start:  cm.InRects[0],
				Goal:   goal,
				Hazard: Zone(cm.InRects[0], goal, w, h),
			}}

		case assay.Mix:
			merged := inAreas[0] + inAreas[1]
			mergedRect, relErr, err := rectAt(mo.Loc[0], merged)
			if err != nil {
				return nil, err
			}
			cm.SizeErr = relErr
			cm.MergedRect = mergedRect
			cm.OutRects = []geom.Rect{mergedRect}
			cm.OutAreas = []int{merged}
			for j := 0; j < 2; j++ {
				goal, _, err := rectAt(mo.Loc[0], inAreas[j])
				if err != nil {
					return nil, err
				}
				cm.Jobs = append(cm.Jobs, RJ{
					MO: i, Index: j,
					Start:  cm.InRects[j],
					Goal:   goal,
					Hazard: Zone(cm.InRects[j], goal, w, h),
				})
			}

		case assay.Spt:
			a0 := inAreas[0] / 2
			a1 := inAreas[0] - a0
			s0, s1 := SplitRects(cm.InRects[0], a0, a1, w, h)
			g0, relErr0, err := rectAt(mo.Loc[0], a0)
			if err != nil {
				return nil, err
			}
			g1, relErr1, err := rectAt(mo.Loc[1], a1)
			if err != nil {
				return nil, err
			}
			cm.SizeErr = math.Max(relErr0, relErr1)
			cm.OutRects = []geom.Rect{g0, g1}
			cm.OutAreas = []int{a0, a1}
			cm.Jobs = []RJ{
				{MO: i, Index: 0, Start: s0, Goal: g0, Hazard: Zone(s0, g0, w, h)},
				{MO: i, Index: 1, Start: s1, Goal: g1, Hazard: Zone(s1, g1, w, h)},
			}

		case assay.Dlt:
			// Phase 0: route both inputs to the mix site (Alg. 1 lines
			// 12–13); the merged droplet then splits and phase 1 routes
			// the halves to loc[0] and loc[1] (lines 14–15).
			merged := inAreas[0] + inAreas[1]
			mergedRect, relErr, err := rectAt(mo.Loc[0], merged)
			if err != nil {
				return nil, err
			}
			cm.SizeErr = relErr
			cm.MergedRect = mergedRect
			for j := 0; j < 2; j++ {
				goal, _, err := rectAt(mo.Loc[0], inAreas[j])
				if err != nil {
					return nil, err
				}
				cm.Jobs = append(cm.Jobs, RJ{
					MO: i, Index: j, Phase: 0,
					Start:  cm.InRects[j],
					Goal:   goal,
					Hazard: Zone(cm.InRects[j], goal, w, h),
				})
			}
			a0 := merged / 2
			a1 := merged - a0
			s0, s1 := SplitRects(mergedRect, a0, a1, w, h)
			g0, _, err := rectAt(mo.Loc[0], a0)
			if err != nil {
				return nil, err
			}
			g1, _, err := rectAt(mo.Loc[1], a1)
			if err != nil {
				return nil, err
			}
			cm.OutRects = []geom.Rect{g0, g1}
			cm.OutAreas = []int{a0, a1}
			cm.Jobs = append(cm.Jobs,
				RJ{MO: i, Index: 2, Phase: 1, Start: s0, Goal: g0, Hazard: Zone(s0, g0, w, h)},
				RJ{MO: i, Index: 3, Phase: 1, Start: s1, Goal: g1, Hazard: Zone(s1, g1, w, h)},
			)

		default:
			return nil, fmt.Errorf("route: unsupported operation type %v", mo.Type)
		}
	}
	return p, nil
}

// TotalJobs returns the number of routing jobs in the plan.
func (p *Plan) TotalJobs() int {
	n := 0
	for i := range p.MOs {
		n += len(p.MOs[i].Jobs)
	}
	return n
}
