// Package stats provides the small statistical toolkit needed by the
// experiment harness: descriptive statistics, Pearson correlation of
// actuation vectors (Fig. 3), least-squares linear fits (Fig. 5), and the
// exponential force-model fit with adjusted R² (Fig. 6).
package stats

import (
	"errors"
	"math"

	"meda/internal/randx"
)

// ErrDegenerate is returned when a statistic is undefined for the input,
// e.g. correlation of a constant vector or a fit with too few points.
var ErrDegenerate = errors.New("stats: degenerate input")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample (n−1) standard deviation, as used for the
// SD bars of Fig. 16.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// MeanStd returns mean and sample standard deviation in one pass-friendly
// call (two passes internally for numerical clarity).
func MeanStd(xs []float64) (mean, sd float64) {
	return Mean(xs), SampleStdDev(xs)
}

// Covariance returns the population covariance of two equal-length vectors.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, ErrDegenerate
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)), nil
}

// Pearson returns the Pearson correlation coefficient
// ρ = cov(x,y)/(σx·σy), the statistic used in Fig. 3 for actuation vectors.
// It returns ErrDegenerate when either vector is constant.
func Pearson(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if isZero(sx) || isZero(sy) {
		return 0, ErrDegenerate
	}
	r := cov / (sx * sy)
	// Clamp tiny floating-point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// PearsonBool is Pearson correlation specialized to Boolean actuation
// vectors A_ij ∈ {0,1}^N (Sec. III-C). It avoids allocating float slices.
func PearsonBool(a, b []bool) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, ErrDegenerate
	}
	n := float64(len(a))
	var na, nb, nab float64
	for i := range a {
		if a[i] {
			na++
		}
		if b[i] {
			nb++
		}
		if a[i] && b[i] {
			nab++
		}
	}
	pa, pb := na/n, nb/n
	va, vb := pa*(1-pa), pb*(1-pb)
	if isZero(va) || isZero(vb) {
		return 0, ErrDegenerate
	}
	cov := nab/n - pa*pb
	r := cov / math.Sqrt(va*vb)
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// LinearFit holds the result of an ordinary least-squares line fit
// y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits a least-squares line through the points (xs[i], ys[i]).
// Used to quantify the linear capacitance growth of Fig. 5.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, ErrDegenerate
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if isZero(sxx) {
		return LinearFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// ExpFit holds the result of fitting the force decay model of Eq. (2),
// F̄(n) = τ^(2n/c). Only the decay rate λ = −2·ln(τ)/c is identifiable from
// force-vs-actuation data alone; Tau and C report one representative
// parameterization obtained by pinning τ, matching how the paper reports
// (τ, c) pairs such as (0.556, 822.7).
type ExpFit struct {
	Lambda float64 // decay rate: F̄(n) = exp(−Lambda·n)
	Tau    float64 // pinned τ
	C      float64 // c = −2·ln(τ)/Lambda for the pinned τ
	R2Adj  float64 // adjusted R² of the fit in the original (force) domain
}

// Predict returns the fitted force at actuation count n.
func (f ExpFit) Predict(n float64) float64 { return math.Exp(-f.Lambda * n) }

// FitForceModel fits F̄(n) = τ^(2n/c) = exp(−λn) to measured (n, F̄) points
// by least squares in the log domain (weighted implicitly by the log
// transform, which is the standard approach for exponential decay). tauPin
// chooses the reported (τ, c) parameterization; the paper's fits use
// τ ≈ 0.53–0.56.
func FitForceModel(ns, fs []float64, tauPin float64) (ExpFit, error) {
	if len(ns) != len(fs) || len(ns) < 2 {
		return ExpFit{}, ErrDegenerate
	}
	if tauPin <= 0 || tauPin >= 1 {
		return ExpFit{}, errors.New("stats: tauPin must be in (0,1)")
	}
	// Fit ln F = −λ·n through the origin (F(0) = 1 by definition of
	// relative force).
	var sxx, sxy float64
	for i := range ns {
		if fs[i] <= 0 {
			continue // fully failed points carry no log information
		}
		sxx += ns[i] * ns[i]
		sxy += ns[i] * math.Log(fs[i])
	}
	if isZero(sxx) {
		return ExpFit{}, ErrDegenerate
	}
	lambda := -sxy / sxx
	fit := ExpFit{Lambda: lambda, Tau: tauPin}
	if !isZero(lambda) {
		fit.C = -2 * math.Log(tauPin) / lambda
	} else {
		fit.C = math.Inf(1)
	}
	fit.R2Adj = adjustedR2(ns, fs, fit.Predict, 1)
	return fit, nil
}

// adjustedR2 computes R²_adj = 1 − (1−R²)·(n−1)/(n−p−1) for a model with p
// parameters, evaluated in the original data domain.
func adjustedR2(xs, ys []float64, model func(float64) float64, p int) float64 {
	n := len(xs)
	if n <= p+1 {
		return math.NaN()
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - model(xs[i])
		ssRes += d * d
		t := ys[i] - my
		ssTot += t * t
	}
	if isZero(ssTot) {
		return math.NaN()
	}
	r2 := 1 - ssRes/ssTot
	return 1 - (1-r2)*float64(n-1)/float64(n-p-1)
}

// Histogram counts values into k equal-width bins over [lo, hi]; values
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, k int) []int {
	bins := make([]int, k)
	if k == 0 || hi <= lo {
		return bins
	}
	w := (hi - lo) / float64(k)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		bins[i]++
	}
	return bins
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation; xs need not be sorted (a copy is sorted internally).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrDegenerate
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	insertionSort(cp)
	if q <= 0 {
		return cp[0], nil
	}
	if q >= 1 {
		return cp[len(cp)-1], nil
	}
	pos := q * float64(len(cp)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(cp) {
		return cp[i], nil
	}
	return cp[i]*(1-frac) + cp[i+1]*frac, nil
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// BootstrapCI estimates a two-sided confidence interval for the mean of xs
// by the percentile bootstrap: resamples of xs (with replacement) are drawn
// from src, and the (α/2, 1−α/2) quantiles of their means bound the
// interval. Used to put honest error bars on simulation experiments whose
// cycle counts are far from normal (aborts pile up at k_max).
func BootstrapCI(xs []float64, confidence float64, resamples int, src *randx.Source) (lo, hi float64, err error) {
	if len(xs) == 0 || resamples < 1 {
		return 0, 0, ErrDegenerate
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence must be in (0,1)")
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[src.IntN(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := 1 - confidence
	lo, err = Quantile(means, alpha/2)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Quantile(means, 1-alpha/2)
	return lo, hi, err
}

// isZero is an exact sentinel comparison (medalint floatcmp): a variance or
// sum of squares that is exactly zero marks a degenerate input (constant
// series), which is a structural property, not a rounding accident.
func isZero(x float64) bool { return x == 0 }
