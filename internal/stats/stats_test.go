package stats

import (
	"math"
	"testing"
	"testing/quick"

	"meda/internal/randx"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty mean/variance should be 0")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("Pearson(nil) should error")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("FitLinear with one point should error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should error")
	}
}

func TestSampleStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if sd := SampleStdDev(xs); !almost(sd, want, 1e-12) {
		t.Errorf("SampleStdDev = %v, want %v", sd, want)
	}
	if SampleStdDev([]float64{3}) != 0 {
		t.Error("single-point sample SD should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %v/%v, want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err != ErrDegenerate {
		t.Errorf("constant vector should be degenerate, got %v", err)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	src := randx.New(5)
	for trial := 0; trial < 200; trial++ {
		n := src.IntRange(3, 40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = src.Normal(0, 3)
			ys[i] = src.Normal(0, 3)
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			continue
		}
		if r < -1 || r > 1 || math.IsNaN(r) {
			t.Fatalf("Pearson out of [-1,1]: %v", r)
		}
	}
}

func TestPearsonBoolMatchesFloat(t *testing.T) {
	src := randx.New(6)
	for trial := 0; trial < 100; trial++ {
		n := src.IntRange(4, 64)
		a := make([]bool, n)
		b := make([]bool, n)
		fa := make([]float64, n)
		fb := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = src.Bool(0.4)
			b[i] = src.Bool(0.6)
			if a[i] {
				fa[i] = 1
			}
			if b[i] {
				fb[i] = 1
			}
		}
		rb, errB := PearsonBool(a, b)
		rf, errF := Pearson(fa, fb)
		if (errB == nil) != (errF == nil) {
			continue // both degenerate cases are rare but legal
		}
		if errB == nil && !almost(rb, rf, 1e-9) {
			t.Fatalf("PearsonBool=%v Pearson=%v", rb, rf)
		}
	}
}

func TestPearsonBoolIdentical(t *testing.T) {
	a := []bool{true, false, true, true, false}
	r, err := PearsonBool(a, a)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("self correlation = %v/%v, want 1", r, err)
	}
	inv := make([]bool, len(a))
	for i := range a {
		inv[i] = !a[i]
	}
	r, _ = PearsonBool(a, inv)
	if !almost(r, -1, 1e-12) {
		t.Errorf("inverse correlation = %v, want -1", r)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 3, 1e-12) || !almost(fit.Intercept, 7, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	src := randx.New(8)
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.05*xs[i] + 2 + src.Normal(0, 0.3)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 0.05, 0.002) {
		t.Errorf("Slope = %v, want ≈0.05", fit.Slope)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestFitForceModelRecoversRate(t *testing.T) {
	// Generate F(n) = τ^(2n/c) with the paper's Fig. 6 parameters
	// (τ, c) = (0.556, 822.7) and check that the fitted decay rate matches.
	tau, c := 0.556, 822.7
	lambda := -2 * math.Log(tau) / c
	ns := make([]float64, 60)
	fs := make([]float64, 60)
	for i := range ns {
		ns[i] = float64(i * 20)
		fs[i] = math.Pow(tau, 2*ns[i]/c)
	}
	fit, err := FitForceModel(ns, fs, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Lambda, lambda, 1e-9) {
		t.Errorf("Lambda = %v, want %v", fit.Lambda, lambda)
	}
	if !almost(fit.C, c, 1e-6) {
		t.Errorf("C = %v, want %v", fit.C, c)
	}
	if fit.R2Adj < 0.999 {
		t.Errorf("R2Adj = %v on noiseless data", fit.R2Adj)
	}
}

func TestFitForceModelNoisyR2(t *testing.T) {
	src := randx.New(9)
	tau, c := 0.543, 805.5
	ns := make([]float64, 80)
	fs := make([]float64, 80)
	for i := range ns {
		ns[i] = float64(i * 15)
		fs[i] = math.Pow(tau, 2*ns[i]/c) * math.Exp(src.Normal(0, 0.02))
	}
	fit, err := FitForceModel(ns, fs, tau)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports R²_adj > 0.94 for all curves.
	if fit.R2Adj < 0.94 {
		t.Errorf("R2Adj = %v, want > 0.94", fit.R2Adj)
	}
}

func TestFitForceModelRejectsBadTau(t *testing.T) {
	if _, err := FitForceModel([]float64{1, 2}, []float64{1, 0.9}, 1.5); err == nil {
		t.Error("tauPin > 1 should error")
	}
	if _, err := FitForceModel([]float64{1, 2}, []float64{1, 0.9}, 0); err == nil {
		t.Error("tauPin = 0 should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -3}
	bins := Histogram(xs, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", bins)
	}
	if got := Histogram(nil, 0, 1, 3); got[0] != 0 {
		t.Error("empty histogram must be zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	med, err := Quantile(xs, 0.5)
	if err != nil || med != 3 {
		t.Errorf("median = %v/%v, want 3", med, err)
	}
	lo, _ := Quantile(xs, 0)
	hi, _ := Quantile(xs, 1)
	if lo != 1 || hi != 5 {
		t.Errorf("extremes = %v, %v", lo, hi)
	}
	q, _ := Quantile([]float64{1, 2}, 0.25)
	if !almost(q, 1.25, 1e-12) {
		t.Errorf("Quantile(0.25) = %v, want 1.25", q)
	}
}

func TestQuantileSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q25, _ := Quantile(xs, 0.25)
		q75, _ := Quantile(xs, 0.75)
		return q25 <= q75
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCovarianceSign(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1, 2, 3}
	cov, err := Covariance(xs, ys)
	if err != nil || cov <= 0 {
		t.Errorf("cov = %v/%v, want > 0", cov, err)
	}
	cov, _ = Covariance(xs, []float64{3, 2, 1})
	if cov >= 0 {
		t.Errorf("cov = %v, want < 0", cov)
	}
}

func TestBootstrapCI(t *testing.T) {
	src := randx.New(99)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = src.Normal(100, 10)
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 2000, src.Split("boot"))
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Fatalf("interval [%v, %v] inverted", lo, hi)
	}
	// The true mean (≈100) lies inside; the interval is roughly ±2·σ/√n.
	if lo > 100.5 || hi < 99.5 {
		t.Errorf("interval [%v, %v] misses the mean", lo, hi)
	}
	if hi-lo > 4 {
		t.Errorf("interval [%v, %v] implausibly wide", lo, hi)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	src := randx.New(1)
	if _, _, err := BootstrapCI(nil, 0.95, 100, src); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, 1.5, 100, src); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, 0.95, 0, src); err == nil {
		t.Error("zero resamples accepted")
	}
}

func TestBootstrapCIConstantSample(t *testing.T) {
	src := randx.New(2)
	lo, hi, err := BootstrapCI([]float64{5, 5, 5, 5}, 0.9, 200, src)
	if err != nil || lo != 5 || hi != 5 {
		t.Errorf("constant-sample CI = [%v, %v]/%v", lo, hi, err)
	}
}
