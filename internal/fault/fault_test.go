package fault

import (
	"math"
	"testing"
)

func TestParseKinds(t *testing.T) {
	cases := []struct {
		in   string
		want Kinds
	}{
		{"all", AllKinds},
		{"none", 0},
		{"", 0},
		{"act", Actuation},
		{"actuation", Actuation},
		{"sense,ctl", Sensing | Control},
		{"act, sense , ctl", AllKinds},
		{"ACT,Control", Actuation | Control},
	}
	for _, c := range cases {
		got, err := ParseKinds(c.in)
		if err != nil {
			t.Fatalf("ParseKinds(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseKinds(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Error("ParseKinds(bogus): want error")
	}
}

func TestKindsString(t *testing.T) {
	if got := AllKinds.String(); got != "act,sense,ctl" {
		t.Errorf("AllKinds.String() = %q", got)
	}
	if got := Kinds(0).String(); got != "none" {
		t.Errorf("Kinds(0).String() = %q", got)
	}
	// String and ParseKinds round-trip.
	for _, k := range []Kinds{Actuation, Sensing, Control, Actuation | Control, AllKinds} {
		back, err := ParseKinds(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v -> %q -> %v (err %v)", k, k.String(), back, err)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := Mixed(1, 0.05, AllKinds)
	if err := good.Validate(); err != nil {
		t.Fatalf("Mixed plan invalid: %v", err)
	}
	bad := []Plan{
		{StuckOff: -0.1},
		{Transient: 1.5},
		{StuckOff: 0.7, StuckOn: 0.7},
		{StuckAfterLo: 5, StuckAfterHi: 2},
		{SensorEpoch: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports Enabled")
	}
	if (Plan{Seed: 99}).Enabled() {
		t.Error("seed-only plan reports Enabled")
	}
	if !(Plan{CachePoison: 0.1}).Enabled() {
		t.Error("cache-poison plan not Enabled")
	}
	if Mixed(1, 0, AllKinds).Enabled() {
		t.Error("zero-rate Mixed plan reports Enabled")
	}
}

func TestMixedKindsSelect(t *testing.T) {
	p := Mixed(1, 0.1, Sensing)
	if p.StuckOff != 0 || p.SynthTimeout != 0 {
		t.Errorf("Sensing-only plan has non-sensing rates: %+v", p)
	}
	if p.SensorFlip == 0 || p.SensorStale == 0 {
		t.Errorf("Sensing-only plan missing sensing rates: %+v", p)
	}
	if got := Mixed(1, 5, Control).SynthTimeout; got != 1 {
		t.Errorf("rate clamp: SynthTimeout = %v, want 1", got)
	}
}

func TestDeterministicDecisions(t *testing.T) {
	p := Mixed(42, 0.2, AllKinds)
	a, b := New(p, 60, 30), New(p, 60, 30)
	for n := 0; n < 500; n += 17 {
		for y := 1; y <= 30; y += 3 {
			for x := 1; x <= 60; x += 5 {
				if a.PhysicalDegradation(x, y, n, 0.5) != b.PhysicalDegradation(x, y, n, 0.5) {
					t.Fatalf("PhysicalDegradation diverged at (%d,%d,%d)", x, y, n)
				}
				if a.SensedHealth(x, y, n, 2, 2) != b.SensedHealth(x, y, n, 2, 2) {
					t.Fatalf("SensedHealth diverged at (%d,%d,%d)", x, y, n)
				}
			}
		}
	}
	for k := uint64(0); k < 200; k += 7 {
		for att := 0; att < 4; att++ {
			if a.SynthTimeout(k, att) != b.SynthTimeout(k, att) {
				t.Fatalf("SynthTimeout diverged at (%d,%d)", k, att)
			}
		}
		if a.CachePoison(k) != b.CachePoison(k) {
			t.Fatalf("CachePoison diverged at key %d", k)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := New(Mixed(1, 0.3, Actuation), 60, 30)
	b := New(Mixed(2, 0.3, Actuation), 60, 30)
	aOff, aOn := a.StuckCells()
	bOff, bOn := b.StuckCells()
	if aOff == bOff && aOn == bOn {
		// Counts colliding exactly for both categories across different
		// seeds is astronomically unlikely at these rates.
		t.Errorf("seeds 1 and 2 produced identical stuck sets: off=%d on=%d", aOff, aOn)
	}
}

func TestStuckRatesApproximate(t *testing.T) {
	p := Plan{Seed: 7, StuckOff: 0.1, StuckOn: 0.05}
	inj := New(p, 200, 200)
	off, on := inj.StuckCells()
	total := 200 * 200
	if fo := float64(off) / float64(total); math.Abs(fo-0.1) > 0.02 {
		t.Errorf("stuck-off fraction %v, want ~0.1", fo)
	}
	if fn := float64(on) / float64(total); math.Abs(fn-0.05) > 0.02 {
		t.Errorf("stuck-on fraction %v, want ~0.05", fn)
	}
}

func TestStuckActivationThreshold(t *testing.T) {
	// Force every cell stuck-off with a tight activation window so the
	// threshold semantics are observable.
	p := Plan{Seed: 3, StuckOff: 1, StuckAfterLo: 20, StuckAfterHi: 20}
	inj := New(p, 4, 4)
	if off, on := inj.StuckCells(); off != 16 || on != 0 {
		t.Fatalf("StuckCells = (%d,%d), want (16,0)", off, on)
	}
	if got := inj.PhysicalDegradation(2, 2, 19, 0.7); got != 0.7 {
		t.Errorf("before threshold: degradation perturbed to %v", got)
	}
	if got := inj.PhysicalDegradation(2, 2, 20, 0.7); got != 0 {
		t.Errorf("at threshold: degradation = %v, want 0 (stuck-off)", got)
	}
	// Stuck-off is sensed: health reads 0 once triggered.
	if got := inj.SensedHealth(2, 2, 20, 3, 2); got != 0 {
		t.Errorf("stuck-off sensed health = %d, want 0", got)
	}
	if got := inj.SensedHealth(2, 2, 19, 3, 2); got != 3 {
		t.Errorf("pre-threshold sensed health = %d, want 3", got)
	}
}

func TestStuckOnSemantics(t *testing.T) {
	p := Plan{Seed: 3, StuckOn: 1, StuckAfterLo: 1, StuckAfterHi: 1}
	inj := New(p, 2, 2)
	if got := inj.PhysicalDegradation(1, 1, 5, 0.2); got != 1 {
		t.Errorf("stuck-on degradation = %v, want 1", got)
	}
	if got := inj.SensedHealth(1, 1, 5, 1, 2); got != 3 {
		t.Errorf("stuck-on sensed health = %d, want 3", got)
	}
}

func TestTransientPhysicsOnly(t *testing.T) {
	p := Plan{Seed: 11, Transient: 1}
	inj := New(p, 8, 8)
	if got := inj.PhysicalDegradation(3, 3, 10, 0.9); got != 0 {
		t.Errorf("transient=1 degradation = %v, want 0", got)
	}
	// Transients never touch the sensed health.
	if got := inj.SensedHealth(3, 3, 10, 2, 2); got != 2 {
		t.Errorf("transient perturbed sensed health to %d", got)
	}
}

func TestSensorFaultEpochStability(t *testing.T) {
	p := Plan{Seed: 5, SensorFlip: 0.5, SensorStale: 0.2, SensorEpoch: 64}
	inj := New(p, 16, 16)
	// Within one epoch the misread is constant; readings may change only at
	// epoch boundaries.
	for y := 1; y <= 16; y++ {
		for x := 1; x <= 16; x++ {
			base := inj.SensedHealth(x, y, 0, 2, 2)
			for n := 1; n < 64; n++ {
				if got := inj.SensedHealth(x, y, n, 2, 2); got != base {
					t.Fatalf("cell (%d,%d) reading changed mid-epoch at n=%d: %d -> %d", x, y, n, base, got)
				}
			}
		}
	}
	// In-range always.
	for n := 0; n < 1000; n += 13 {
		for y := 1; y <= 16; y += 2 {
			for x := 1; x <= 16; x += 2 {
				h := inj.SensedHealth(x, y, n, 1, 2)
				if h < 0 || h > 3 {
					t.Fatalf("sensed health %d out of 2-bit range", h)
				}
			}
		}
	}
}

func TestSensorStalePinsHealthy(t *testing.T) {
	p := Plan{Seed: 5, SensorStale: 1}
	inj := New(p, 4, 4)
	if got := inj.SensedHealth(2, 2, 0, 0, 2); got != 3 {
		t.Errorf("stale=1 sensed health = %d, want 3 (pinned healthy)", got)
	}
}

func TestControlPlaneRates(t *testing.T) {
	inj := New(Plan{Seed: 9, SynthTimeout: 0.5, CachePoison: 0.5}, 1, 1)
	timeouts, poisons := 0, 0
	const n = 4000
	for k := uint64(0); k < n; k++ {
		if inj.SynthTimeout(k, 0) {
			timeouts++
		}
		if inj.CachePoison(k) {
			poisons++
		}
	}
	if f := float64(timeouts) / n; math.Abs(f-0.5) > 0.05 {
		t.Errorf("timeout fraction %v, want ~0.5", f)
	}
	if f := float64(poisons) / n; math.Abs(f-0.5) > 0.05 {
		t.Errorf("poison fraction %v, want ~0.5", f)
	}
	// Attempts draw independently: with p=0.5 some key must time out on
	// attempt 0 but not attempt 1.
	varies := false
	for k := uint64(0); k < 64 && !varies; k++ {
		varies = inj.SynthTimeout(k, 0) != inj.SynthTimeout(k, 1)
	}
	if !varies {
		t.Error("SynthTimeout identical across attempts for 64 keys")
	}
}

func TestZeroRateInjectorIsTransparent(t *testing.T) {
	inj := New(Plan{Seed: 1}, 8, 8)
	for n := 0; n < 100; n += 9 {
		if got := inj.PhysicalDegradation(4, 4, n, 0.33); got != 0.33 {
			t.Fatalf("zero plan perturbed degradation: %v", got)
		}
		if got := inj.SensedHealth(4, 4, n, 2, 2); got != 2 {
			t.Fatalf("zero plan perturbed health: %d", got)
		}
	}
	if inj.SynthTimeout(1, 0) || inj.CachePoison(1) {
		t.Error("zero plan injected control-plane fault")
	}
	if off, on := inj.StuckCells(); off != 0 || on != 0 {
		t.Errorf("zero plan has stuck cells (%d,%d)", off, on)
	}
}

func TestOutOfBoundsCells(t *testing.T) {
	inj := New(Plan{Seed: 1, StuckOff: 1, StuckAfterLo: 1, StuckAfterHi: 1}, 4, 4)
	// Out-of-bounds coordinates pass through untouched rather than panic.
	if got := inj.PhysicalDegradation(0, 0, 100, 0.5); got != 0.5 {
		t.Errorf("out-of-bounds degradation perturbed: %v", got)
	}
	if got := inj.PhysicalDegradation(5, 5, 100, 0.5); got != 0.5 {
		t.Errorf("out-of-bounds degradation perturbed: %v", got)
	}
}

func TestDefaultsFilled(t *testing.T) {
	inj := New(Plan{Seed: 1, StuckOff: 0.1}, 4, 4)
	p := inj.Plan()
	if p.StuckAfterLo != 10 || p.StuckAfterHi != 150 {
		t.Errorf("StuckAfter defaults = [%d,%d], want [10,150]", p.StuckAfterLo, p.StuckAfterHi)
	}
	if p.SensorEpoch != 64 {
		t.Errorf("SensorEpoch default = %d, want 64", p.SensorEpoch)
	}
}
