package fault

import "meda/internal/telemetry"

// Fault-injection telemetry (internal/telemetry default registry).
// fault.cells.* tick once per stuck cell, the first time its activated
// fault is observed by a force or health read; fault.reads.* count
// perturbed reads (a transient dropout or sensor misread may be observed
// several times per operational cycle — these are observation counts, not
// distinct faults). Control-plane injections are counted where they take
// effect, in sched (sched.fault.*).
var (
	telStuckOff  = telemetry.C("fault.cells.stuck_off")
	telStuckOn   = telemetry.C("fault.cells.stuck_on")
	telTransient = telemetry.C("fault.reads.transient")
	telFlip      = telemetry.C("fault.reads.sensor_flip")
	telStale     = telemetry.C("fault.reads.sensor_stale")
)
