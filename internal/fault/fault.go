// Package fault is the deterministic, seed-driven fault-injection subsystem:
// the executable form of the paper's Player ② adversary. Where
// internal/degrade models the *smooth* charge-trapping decay of Sec. IV and
// the scheduled hard faults of Sec. VII-C, this package injects the abrupt,
// unscheduled failures the fault-tolerance literature treats as first-class
// — stuck microelectrodes, transient actuation dropouts, sensor misreads,
// and control-plane failures — so the scheduler's graceful-degradation
// ladder (sched.Fallback, sim divergence detection) can be exercised and
// regression-tested.
//
// Faults are injected at three levels:
//
//   - actuation: stuck-off / stuck-on microelectrodes (activated once a
//     cell's actuation count crosses a per-cell threshold) and transient
//     per-actuation force dropouts, perturbing the chip's *physical* force
//     production;
//   - sensing: flipped or stale 2-bit health readings (the paper's MC
//     sensor, Table I), perturbing only the *observed* health matrix H so
//     the scheduler plans against a wrong view of the chip;
//   - control plane: injected synthesis timeouts and strategy-cache
//     poisoning inside the scheduler (consumed through sched's
//     FaultInjector interface).
//
// Everything is a pure function of (seed, fault kind, cell/key, counter):
// no shared RNG stream is consumed, so fault decisions are independent of
// goroutine scheduling and call order. The same seed, chip and bioassay
// therefore produce byte-identical simulation traces across runs — the
// property sim's fault determinism regression test asserts.
package fault

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kinds is a bitmask selecting fault classes for Mixed plans.
type Kinds uint8

const (
	// Actuation selects stuck-off/stuck-on cells and transient dropouts.
	Actuation Kinds = 1 << iota
	// Sensing selects flipped and stale health readings.
	Sensing
	// Control selects synthesis timeouts and cache poisoning.
	Control

	// AllKinds selects every fault class.
	AllKinds = Actuation | Sensing | Control
)

// String renders the bitmask as a comma list ("act,sense,ctl").
func (k Kinds) String() string {
	if k == 0 {
		return "none"
	}
	var parts []string
	if k&Actuation != 0 {
		parts = append(parts, "act")
	}
	if k&Sensing != 0 {
		parts = append(parts, "sense")
	}
	if k&Control != 0 {
		parts = append(parts, "ctl")
	}
	return strings.Join(parts, ",")
}

// ParseKinds parses a comma list of fault-class names. Accepted names:
// act/actuation, sense/sensing, ctl/control, all, none.
func ParseKinds(s string) (Kinds, error) {
	var k Kinds
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "act", "actuation":
			k |= Actuation
		case "sense", "sensing":
			k |= Sensing
		case "ctl", "control":
			k |= Control
		case "all":
			k |= AllKinds
		case "none", "":
		default:
			return 0, fmt.Errorf("fault: unknown fault kind %q (want act, sense, ctl, all)", part)
		}
	}
	return k, nil
}

// Plan configures one fault-injection run. All rates are probabilities in
// [0, 1]; the zero value injects nothing (Enabled reports false).
type Plan struct {
	// Seed drives every fault decision. Two injectors with the same seed
	// and rates make identical decisions.
	Seed uint64

	// StuckOff / StuckOn are the per-cell probabilities that a
	// microelectrode is latently stuck: once its actuation count crosses a
	// per-cell threshold drawn from [StuckAfterLo, StuckAfterHi], its
	// physical degradation pins to 0 (off) or 1 (on). The MC health sensor
	// observes stuck cells (it senses actual capacitance), so a health-aware
	// router can route around them once they trigger.
	StuckOff, StuckOn float64
	// StuckAfterLo/Hi bound the per-cell stuck-activation threshold in
	// actuations; zero values default to [10, 150].
	StuckAfterLo, StuckAfterHi int

	// Transient is the per-actuation probability that a cell produces no
	// EWOD force for one actuation count — a dropout invisible to the
	// health sensor.
	Transient float64

	// SensorFlip / SensorStale are per-cell-per-epoch probabilities of a
	// health misread: flip XORs the b-bit code with a nonzero mask; stale
	// pins the reading at fully healthy regardless of actual wear (the
	// insidious case: the scheduler plans through a region it believes is
	// fine). A misread persists for SensorEpoch actuations of the cell so
	// the observed matrix does not flicker every cycle.
	SensorFlip, SensorStale float64
	// SensorEpoch is the misread persistence window in actuations; zero
	// defaults to 64.
	SensorEpoch int

	// SynthTimeout is the per-attempt probability that an online strategy
	// synthesis is failed with sched.ErrInjectedTimeout. Keyed by (job key,
	// attempt), so a bounded retry usually succeeds.
	SynthTimeout float64
	// CachePoison is the per-key probability that a synthesized strategy is
	// discarded instead of stored (a poisoned cache line that fails its
	// integrity check), forcing re-synthesis on the next request.
	CachePoison float64
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool {
	return p.StuckOff > 0 || p.StuckOn > 0 || p.Transient > 0 ||
		p.SensorFlip > 0 || p.SensorStale > 0 ||
		p.SynthTimeout > 0 || p.CachePoison > 0
}

// Validate checks every rate and window.
func (p Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"StuckOff", p.StuckOff}, {"StuckOn", p.StuckOn},
		{"Transient", p.Transient},
		{"SensorFlip", p.SensorFlip}, {"SensorStale", p.SensorStale},
		{"SynthTimeout", p.SynthTimeout}, {"CachePoison", p.CachePoison},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v out of [0,1]", r.name, r.v)
		}
	}
	if p.StuckOff+p.StuckOn > 1 {
		return fmt.Errorf("fault: StuckOff+StuckOn = %v exceeds 1", p.StuckOff+p.StuckOn)
	}
	if p.StuckAfterLo < 0 || p.StuckAfterHi < p.StuckAfterLo {
		return fmt.Errorf("fault: invalid StuckAfter window [%d,%d]", p.StuckAfterLo, p.StuckAfterHi)
	}
	if p.SensorEpoch < 0 {
		return fmt.Errorf("fault: negative SensorEpoch %d", p.SensorEpoch)
	}
	return nil
}

// withDefaults fills the zero-valued structural knobs.
func (p Plan) withDefaults() Plan {
	if p.StuckAfterLo == 0 && p.StuckAfterHi == 0 {
		p.StuckAfterLo, p.StuckAfterHi = 10, 150
	}
	if p.SensorEpoch == 0 {
		p.SensorEpoch = 64
	}
	return p
}

// Mixed returns a plan that spreads an overall fault rate across the
// selected kinds — the configuration behind the -inject flags and the
// medafuzz trial mode. At rate 0.05 with AllKinds: 1% of cells stuck-off,
// 0.5% stuck-on, 0.5% transient dropout per actuation, 1% flipped and 1%
// stale sensor reads per cell-epoch, 5% synthesis timeouts and 5% cache
// poisoning.
//
//meda:deterministic
func Mixed(seed uint64, rate float64, kinds Kinds) Plan {
	p := Plan{Seed: seed}
	if rate <= 0 {
		return p
	}
	if rate > 1 {
		rate = 1
	}
	if kinds&Actuation != 0 {
		p.StuckOff = rate / 5
		p.StuckOn = rate / 10
		p.Transient = rate / 10
	}
	if kinds&Sensing != 0 {
		p.SensorFlip = rate / 5
		p.SensorStale = rate / 5
	}
	if kinds&Control != 0 {
		p.SynthTimeout = rate
		p.CachePoison = rate
	}
	return p
}

// Hash-domain separators for the fault decision streams.
const (
	kindStuck uint8 = iota + 1
	kindStuckAt
	kindFlipHit
	kindFlipMask
	kindStaleHit
	kindTransient
	kindTimeout
	kindPoison
)

// stuck cell modes.
const (
	stuckNone int8 = iota
	stuckOff
	stuckOn
)

// stuckCell is the precomputed latent fault of one microelectrode.
type stuckCell struct {
	mode int8
	at   int32 // activation threshold in actuations
	// seen flips to 1 (atomically) the first time the activated fault is
	// observed, so the telemetry counter ticks once per cell.
	seen atomic.Uint32
}

// Injector makes every fault decision for one chip. It holds no mutable
// state beyond telemetry bookkeeping, so it is safe for concurrent use by
// the simulator and background synthesis workers.
type Injector struct {
	plan  Plan
	w, h  int
	cells []stuckCell
}

// New builds the injector for a w×h chip, precomputing the latent stuck-cell
// set from the plan seed. The plan should be Validated first; rates are used
// as given.
func New(p Plan, w, h int) *Injector {
	p = p.withDefaults()
	inj := &Injector{plan: p, w: w, h: h, cells: make([]stuckCell, w*h)}
	if p.StuckOff > 0 || p.StuckOn > 0 {
		for y := 1; y <= h; y++ {
			for x := 1; x <= w; x++ {
				//lint:ignore gridbounds cells was just made with w*h entries and the loops confine 1 ≤ x ≤ w, 1 ≤ y ≤ h
				c := &inj.cells[(y-1)*w+(x-1)]
				u := inj.unit(kindStuck, uint64(x), uint64(y), 0)
				switch {
				case u < p.StuckOff:
					c.mode = stuckOff
				case u < p.StuckOff+p.StuckOn:
					c.mode = stuckOn
				default:
					continue
				}
				span := p.StuckAfterHi - p.StuckAfterLo + 1
				at := p.StuckAfterLo + int(inj.mix(kindStuckAt, uint64(x), uint64(y), 0)%uint64(span))
				c.at = int32(at)
			}
		}
	}
	return inj
}

// Plan returns the plan the injector was built from (with defaults filled).
func (i *Injector) Plan() Plan { return i.plan }

// StuckCells returns how many cells are latently stuck (off, on) — a test
// and reporting helper.
func (i *Injector) StuckCells() (off, on int) {
	for idx := range i.cells {
		switch i.cells[idx].mode {
		case stuckOff:
			off++
		case stuckOn:
			on++
		}
	}
	return off, on
}

// mix hashes the fault-decision coordinates into 64 well-mixed bits using
// the splitmix64 finalizer. Allocation-free: this sits on the chip's health
// and force read paths.
func (i *Injector) mix(kind uint8, a, b, c uint64) uint64 {
	h := i.plan.Seed ^ (uint64(kind) * 0x9e3779b97f4a7c15)
	h = splitmix(h ^ a)
	h = splitmix(h ^ b)
	h = splitmix(h ^ c)
	return h
}

// unit maps the hashed coordinates to a uniform draw in [0, 1).
func (i *Injector) unit(kind uint8, a, b, c uint64) float64 {
	return float64(i.mix(kind, a, b, c)>>11) / (1 << 53)
}

func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stuckAt returns the cell's active stuck mode at actuation count n, or
// stuckNone when the cell is healthy or the threshold has not triggered yet.
func (i *Injector) stuckAt(x, y, n int) int8 {
	if x < 1 || x > i.w || y < 1 || y > i.h {
		return stuckNone
	}
	//lint:ignore gridbounds cells has w*h entries and the range guard above confines 1 ≤ x ≤ w, 1 ≤ y ≤ h
	c := &i.cells[(y-1)*i.w+(x-1)]
	if c.mode == stuckNone || int32(n) < c.at {
		return stuckNone
	}
	if c.seen.CompareAndSwap(0, 1) {
		if c.mode == stuckOff {
			telStuckOff.Inc()
		} else {
			telStuckOn.Inc()
		}
	}
	return c.mode
}

// PhysicalDegradation implements chip.FaultModel: it perturbs the effective
// degradation level driving EWOD force at actuation count n. Stuck-off pins
// the level at 0, stuck-on at 1; a transient dropout zeroes it for this
// actuation count only.
//
//meda:deterministic
func (i *Injector) PhysicalDegradation(x, y, n int, d float64) float64 {
	switch i.stuckAt(x, y, n) {
	case stuckOff:
		return 0
	case stuckOn:
		return 1
	}
	if i.plan.Transient > 0 && i.unit(kindTransient, uint64(x), uint64(y), uint64(n)) < i.plan.Transient {
		telTransient.Inc()
		return 0
	}
	return d
}

// SensedHealth implements chip.FaultModel: it returns the health code the MC
// sensor reports at actuation count n, given the fault-free code h. Stuck
// cells are sensed truthfully (the sensor measures actual capacitance);
// flip/stale misreads then perturb the reading, each persisting for
// SensorEpoch actuations of the cell.
//
//meda:deterministic
func (i *Injector) SensedHealth(x, y, n, h, bits int) int {
	top := 1<<uint(bits) - 1
	switch i.stuckAt(x, y, n) {
	case stuckOff:
		h = 0
	case stuckOn:
		h = top
	}
	if i.plan.SensorFlip == 0 && i.plan.SensorStale == 0 {
		return h
	}
	epoch := uint64(n / i.plan.SensorEpoch)
	if i.plan.SensorFlip > 0 && i.unit(kindFlipHit, uint64(x), uint64(y), epoch) < i.plan.SensorFlip {
		telFlip.Inc()
		mask := 1 + int(i.mix(kindFlipMask, uint64(x), uint64(y), epoch)%uint64(top))
		h ^= mask
		if h > top {
			h = top
		}
		if h < 0 {
			h = 0
		}
	}
	if i.plan.SensorStale > 0 && i.unit(kindStaleHit, uint64(x), uint64(y), epoch) < i.plan.SensorStale {
		telStale.Inc()
		h = top
	}
	return h
}

// SynthTimeout implements sched.FaultInjector: it reports whether the
// attempt-th synthesis for the keyed job should fail with an injected
// timeout. Independent draws per attempt let bounded retries succeed.
//
//meda:deterministic
func (i *Injector) SynthTimeout(key uint64, attempt int) bool {
	if i.plan.SynthTimeout == 0 {
		return false
	}
	return i.unit(kindTimeout, key, uint64(attempt), 0) < i.plan.SynthTimeout
}

// CachePoison implements sched.FaultInjector: it reports whether a strategy
// store under the keyed cache line should be discarded. The decision is a
// function of the key alone, modeling a persistently corrupted line.
//
//meda:deterministic
func (i *Injector) CachePoison(key uint64) bool {
	if i.plan.CachePoison == 0 {
		return false
	}
	return i.unit(kindPoison, key, 0, 0) < i.plan.CachePoison
}
