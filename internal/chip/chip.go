// Package chip models the physical MEDA biochip: a W×H array of
// microelectrode cells with per-cell degradation state (Sec. III/V), the
// actuation interface used by the controller, and the two views of
// microelectrode condition that drive the paper's framework:
//
//   - the hidden degradation matrix D, known only to the simulator, and
//   - the observed b-bit health matrix H, produced by the 2-bit sensing
//     hardware of Sec. III and the only condition information available to
//     the routing strategy synthesizer.
//
// Coordinates are 1-based: x ∈ [1, W], y ∈ [1, H].
package chip

import (
	"fmt"
	"hash/fnv"

	"meda/internal/action"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
)

// Config describes how to instantiate a biochip.
type Config struct {
	W, H int
	// HealthBits is b, the number of health-sensing bits (2 for the new
	// MC design of Sec. III).
	HealthBits int
	// Normal is the degradation-constant distribution for normal MCs
	// (Sec. VII-B: c ~ U(200,500), τ ~ U(0.5,0.9)).
	Normal degrade.ParamRange
	// Faulty optionally overrides the constant distribution for MCs
	// selected by the fault plan; zero value means "same as Normal".
	Faulty degrade.ParamRange
	// Faults is the hard-fault injection plan (Sec. VII-C).
	Faults degrade.FaultPlan
}

// Default returns the evaluation configuration of Sec. VII-B: a fabricated
// 30×60 MEDA biochip (we write it W=60 columns × H=30 rows) with 2-bit
// health sensing and the default degradation ranges, no hard faults.
func Default() Config {
	return Config{W: 60, H: 30, HealthBits: 2, Normal: degrade.DefaultNormal}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.W < 1 || c.H < 1 {
		return fmt.Errorf("chip: invalid dimensions %d×%d", c.W, c.H)
	}
	if c.HealthBits < 1 || c.HealthBits > 8 {
		return fmt.Errorf("chip: health bits %d out of [1,8]", c.HealthBits)
	}
	if err := c.Normal.Validate(); err != nil {
		return err
	}
	if c.Faulty != (degrade.ParamRange{}) {
		if err := c.Faulty.Validate(); err != nil {
			return err
		}
	}
	return c.Faults.Validate()
}

// FaultModel perturbs the chip's physical and sensed behaviour — the
// interface internal/fault's Injector implements. The chip declares the
// interface locally so the dependency points from the fault subsystem to the
// chip, not the other way around.
//
// PhysicalDegradation maps the fault-free degradation level d of the cell at
// (x, y) with actuation count n to the effective level driving EWOD force.
// SensedHealth maps the fault-free b-bit health code h of the same cell to
// the code the sensor actually reports. Both must be pure functions of their
// arguments (plus the model's fixed seed): the chip calls them on every
// force and health read, including from snapshot copies taken for background
// synthesis workers.
type FaultModel interface {
	PhysicalDegradation(x, y, n int, d float64) float64
	SensedHealth(x, y, n, h, bits int) int
}

// Chip is the simulated biochip state.
type Chip struct {
	w, h   int
	bits   int
	mcs    []degrade.MC // row-major, index = (y−1)*w + (x−1)
	faults FaultModel   // nil means fault-free
}

// AttachFaults overlays a fault model on the chip's force production and
// health sensing. Passing nil detaches. Attach before handing the chip to a
// runner; the overlay itself is safe for concurrent reads but attaching is
// not synchronized against them.
func (c *Chip) AttachFaults(f FaultModel) { c.faults = f }

// New instantiates a biochip, sampling per-MC degradation constants and
// placing hard faults according to the configuration. All randomness comes
// from src.
func New(cfg Config, src *randx.Source) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{w: cfg.W, h: cfg.H, bits: cfg.HealthBits, mcs: make([]degrade.MC, cfg.W*cfg.H)}
	paramSrc := src.Split("params")
	for i := range c.mcs {
		c.mcs[i].Params = cfg.Normal.Sample(paramSrc)
	}
	if cfg.Faults.Mode != degrade.FaultNone {
		faultSrc := src.Split("faults")
		faulty := cfg.Faulty
		if faulty == (degrade.ParamRange{}) {
			faulty = cfg.Normal
		}
		for _, idx := range cfg.Faults.PlaceFaults(cfg.W, cfg.H, faultSrc) {
			c.mcs[idx].Params = faulty.Sample(paramSrc)
			c.mcs[idx].FailAt = faultSrc.IntRange(cfg.Faults.FailAfterLo, cfg.Faults.FailAfterHi)
		}
	}
	return c, nil
}

// W returns the chip width (number of columns).
func (c *Chip) W() int { return c.w }

// H returns the chip height (number of rows).
func (c *Chip) H() int { return c.h }

// HealthBits returns b.
func (c *Chip) HealthBits() int { return c.bits }

// Bounds returns the full chip rectangle ⟦1,W⟧×⟦1,H⟧.
func (c *Chip) Bounds() geom.Rect { return geom.Rect{XA: 1, YA: 1, XB: c.w, YB: c.h} }

// Contains reports whether (x, y) is on-chip.
func (c *Chip) Contains(x, y int) bool {
	return 1 <= x && x <= c.w && 1 <= y && y <= c.h
}

func (c *Chip) index(x, y int) int { return (y-1)*c.w + (x - 1) }

// MC returns the microelectrode cell at (x, y), or nil off-chip.
func (c *Chip) MC(x, y int) *degrade.MC {
	if !c.Contains(x, y) {
		return nil
	}
	return &c.mcs[c.index(x, y)]
}

// Actuations returns the actuation counter n of the MC at (x, y).
func (c *Chip) Actuations(x, y int) int {
	if !c.Contains(x, y) {
		return 0
	}
	return c.mcs[c.index(x, y)].N
}

// Degradation returns the hidden degradation level D at (x, y); off-chip
// cells report 0 (no EWOD force beyond the array edge). An attached fault
// model perturbs the level (stuck cells, transient dropouts).
func (c *Chip) Degradation(x, y int) float64 {
	if !c.Contains(x, y) {
		return 0
	}
	mc := &c.mcs[c.index(x, y)]
	d := mc.Degradation()
	if c.faults != nil {
		d = c.faults.PhysicalDegradation(x, y, mc.N, d)
	}
	return d
}

// Force returns the relative EWOD force F̄ = D² at (x, y), 0 off-chip.
func (c *Chip) Force(x, y int) float64 {
	d := c.Degradation(x, y)
	return d * d
}

// Health returns the observed b-bit health code at (x, y), 0 off-chip. An
// attached fault model perturbs the reading (sensed stuck cells, flipped or
// stale sensor codes).
func (c *Chip) Health(x, y int) int {
	if !c.Contains(x, y) {
		return 0
	}
	mc := &c.mcs[c.index(x, y)]
	h := mc.Health(c.bits)
	if c.faults != nil {
		h = c.faults.SensedHealth(x, y, mc.N, h, c.bits)
	}
	return h
}

// TrueForceField is the simulator's force field, computed from the hidden
// degradation matrix D (Sec. V-C: "for simulation, the same model is used,
// except that the health matrix H is substituted with the degradation
// matrix D").
func (c *Chip) TrueForceField() action.ForceField {
	return func(x, y int) float64 { return c.Force(x, y) }
}

// ObservedForceField is the controller-visible force field: the b-bit health
// code is de-quantized to a degradation estimate D̂ and squared. This is the
// field the synthesis MDP is built from.
func (c *Chip) ObservedForceField() action.ForceField {
	return func(x, y int) float64 {
		if !c.Contains(x, y) {
			return 0
		}
		d := degrade.DegradationFromHealth(c.Health(x, y), c.bits)
		return d * d
	}
}

// SnapshotForceField copies the observed force field over region (expanded
// by a two-cell margin for double-step frontiers, clipped to the chip) into
// a dense buffer and returns a field backed by that copy. Unlike
// ObservedForceField, the returned field never touches live chip state, so
// it is safe to hand to a background synthesis worker while the simulator
// keeps actuating the chip. Cells outside the snapshot read 0, the same as
// off-chip cells.
func (c *Chip) SnapshotForceField(region geom.Rect) action.ForceField {
	r, ok := region.Expand(2).Intersect(c.Bounds())
	if !ok {
		return func(x, y int) float64 { return 0 }
	}
	w := r.XB - r.XA + 1
	forces := make([]float64, w*(r.YB-r.YA+1))
	live := c.ObservedForceField()
	for y := r.YA; y <= r.YB; y++ {
		for x := r.XA; x <= r.XB; x++ {
			//lint:ignore gridbounds forces was just made with w*(YB-YA+1) cells and the loops confine (x,y) to r, so the linearized offset is within the slab
			forces[(y-r.YA)*w+(x-r.XA)] = live(x, y)
		}
	}
	return func(x, y int) float64 {
		if x < r.XA || x > r.XB || y < r.YA || y > r.YB {
			return 0
		}
		return forces[(y-r.YA)*w+(x-r.XA)]
	}
}

// Actuate applies one operational cycle's actuation pattern: every MC inside
// each rectangle is actuated once (charged and discharged), advancing its
// degradation. Rectangles are clipped to the chip; overlapping rectangles
// actuate a cell only once per cycle.
func (c *Chip) Actuate(patterns ...geom.Rect) {
	if len(patterns) == 1 {
		// Fast path: the common single-droplet case needs no dedup.
		r, ok := patterns[0].Intersect(c.Bounds())
		if !ok {
			return
		}
		for y := r.YA; y <= r.YB; y++ {
			base := (y - 1) * c.w
			for x := r.XA; x <= r.XB; x++ {
				//lint:ignore gridbounds c.mcs has w*h cells and r is clipped to the chip bounds, so 1 ≤ x ≤ w and 1 ≤ y ≤ h
				c.mcs[base+x-1].Actuate()
			}
		}
		return
	}
	seen := map[int]bool{}
	for _, p := range patterns {
		r, ok := p.Intersect(c.Bounds())
		if !ok {
			continue
		}
		for y := r.YA; y <= r.YB; y++ {
			for x := r.XA; x <= r.XB; x++ {
				idx := c.index(x, y)
				if !seen[idx] {
					seen[idx] = true
					c.mcs[idx].Actuate()
				}
			}
		}
	}
}

// TotalActuations returns Σ n over all MCs, the chip's cumulative wear.
func (c *Chip) TotalActuations() int {
	total := 0
	for i := range c.mcs {
		total += c.mcs[i].N
	}
	return total
}

// HealthMatrix returns a copy of the observed health matrix H as rows[y-1][x-1].
func (c *Chip) HealthMatrix() [][]int {
	out := make([][]int, c.h)
	for y := 1; y <= c.h; y++ {
		row := make([]int, c.w)
		for x := 1; x <= c.w; x++ {
			row[x-1] = c.Health(x, y)
		}
		out[y-1] = row
	}
	return out
}

// DegradationMatrix returns a copy of the hidden degradation matrix D.
func (c *Chip) DegradationMatrix() [][]float64 {
	out := make([][]float64, c.h)
	for y := 1; y <= c.h; y++ {
		row := make([]float64, c.w)
		for x := 1; x <= c.w; x++ {
			row[x-1] = c.Degradation(x, y)
		}
		out[y-1] = row
	}
	return out
}

// HealthHash returns a hash of the observed health codes within region,
// used by the hybrid scheduler to detect health changes that require
// re-synthesis (Alg. 3). The region is clipped to the chip.
func (c *Chip) HealthHash(region geom.Rect) uint64 {
	h := fnv.New64a()
	r, ok := region.Intersect(c.Bounds())
	if !ok {
		return h.Sum64()
	}
	var buf [1]byte
	for y := r.YA; y <= r.YB; y++ {
		for x := r.XA; x <= r.XB; x++ {
			buf[0] = byte(c.Health(x, y))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// UniformHealth reports whether every observed health code within region
// (clipped to the chip) is the same, and if so which code. A uniform window
// is the precondition for D4 strategy canonicalization: only over a
// constant force field are a job and its rotated/reflected image guaranteed
// equivalent. An empty region is vacuously uniform at full health.
func (c *Chip) UniformHealth(region geom.Rect) (int, bool) {
	r, ok := region.Intersect(c.Bounds())
	if !ok {
		return 1<<uint(c.bits) - 1, true
	}
	code := c.Health(r.XA, r.YA)
	for y := r.YA; y <= r.YB; y++ {
		for x := r.XA; x <= r.XB; x++ {
			if c.Health(x, y) != code {
				return 0, false
			}
		}
	}
	return code, true
}

// MinHealth returns the minimum observed health code within region (clipped
// to the chip); returns 2^b−1 for an empty region.
func (c *Chip) MinHealth(region geom.Rect) int {
	minH := 1<<uint(c.bits) - 1
	r, ok := region.Intersect(c.Bounds())
	if !ok {
		return minH
	}
	for y := r.YA; y <= r.YB; y++ {
		for x := r.XA; x <= r.XB; x++ {
			if h := c.Health(x, y); h < minH {
				minH = h
			}
		}
	}
	return minH
}
