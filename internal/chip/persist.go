// Chip state persistence: a biochip's wear is physical and survives power
// cycles, so the simulator's chips can be saved and restored too — run a
// panel of assays today, reload the same worn chip tomorrow (or hand it to
// cmd/medad to serve over the network).
package chip

import (
	"encoding/json"
	"fmt"
	"io"

	"meda/internal/degrade"
)

// stateFile is the JSON schema of a serialized chip.
type stateFile struct {
	Version    int         `json:"version"`
	W          int         `json:"w"`
	H          int         `json:"h"`
	HealthBits int         `json:"bits"`
	Cells      []cellState `json:"cells"` // row-major, (y−1)*W + (x−1)
}

type cellState struct {
	Tau    float64 `json:"tau"`
	C      float64 `json:"c"`
	N      int     `json:"n"`
	FailAt int     `json:"fail,omitempty"`
}

// SaveState serializes the full chip state: dimensions, sensing resolution,
// and every microelectrode's degradation constants, actuation counter and
// hard-fault threshold.
func (c *Chip) SaveState(w io.Writer) error {
	f := stateFile{Version: 1, W: c.w, H: c.h, HealthBits: c.bits}
	f.Cells = make([]cellState, len(c.mcs))
	for i := range c.mcs {
		mc := &c.mcs[i]
		f.Cells[i] = cellState{Tau: mc.Params.Tau, C: mc.Params.C, N: mc.N, FailAt: mc.FailAt}
	}
	return json.NewEncoder(w).Encode(f)
}

// LoadState reconstructs a chip saved with SaveState.
func LoadState(r io.Reader) (*Chip, error) {
	var f stateFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("chip: loading state: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("chip: unsupported state version %d", f.Version)
	}
	if f.W < 1 || f.H < 1 || f.HealthBits < 1 || f.HealthBits > 8 {
		return nil, fmt.Errorf("chip: invalid saved geometry %d×%d/%d bits", f.W, f.H, f.HealthBits)
	}
	if len(f.Cells) != f.W*f.H {
		return nil, fmt.Errorf("chip: %d cells for a %d×%d array", len(f.Cells), f.W, f.H)
	}
	c := &Chip{w: f.W, h: f.H, bits: f.HealthBits, mcs: make([]degrade.MC, len(f.Cells))}
	for i, cs := range f.Cells {
		p := degrade.Params{Tau: cs.Tau, C: cs.C}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("chip: cell %d: %w", i, err)
		}
		if cs.N < 0 || cs.FailAt < 0 {
			return nil, fmt.Errorf("chip: cell %d has negative counters", i)
		}
		c.mcs[i] = degrade.MC{Params: p, N: cs.N, FailAt: cs.FailAt}
	}
	return c, nil
}
