package chip

import (
	"testing"

	"meda/internal/geom"
	"meda/internal/randx"
)

// TestSnapshotForceFieldIsImmutable: the snapshot must match the observed
// field at capture time and stay frozen while the live chip keeps wearing.
func TestSnapshotForceFieldIsImmutable(t *testing.T) {
	c, err := New(Default(), randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	region := geom.Rect{XA: 5, YA: 5, XB: 20, YB: 15}
	// Wear the region enough for health codes to drop below pristine.
	for i := 0; i < 400; i++ {
		c.Actuate(region)
	}
	snap := c.SnapshotForceField(region)
	live := c.ObservedForceField()
	check := region.Expand(2)
	for y := check.YA; y <= check.YB; y++ {
		for x := check.XA; x <= check.XB; x++ {
			if snap(x, y) != live(x, y) {
				t.Fatalf("(%d,%d): snapshot %v, live %v", x, y, snap(x, y), live(x, y))
			}
		}
	}
	before := snap(10, 10)
	for i := 0; i < 3000; i++ {
		c.Actuate(region)
	}
	if snap(10, 10) != before {
		t.Error("snapshot changed after further actuation")
	}
	if live(10, 10) >= before {
		t.Error("live field did not degrade; test is vacuous")
	}
	// Outside the snapshot margin the field reads 0, like off-chip cells.
	if v := snap(40, 25); v != 0 {
		t.Errorf("outside snapshot: got %v, want 0", v)
	}
	if v := snap(0, 0); v != 0 {
		t.Errorf("off-chip: got %v, want 0", v)
	}
}
