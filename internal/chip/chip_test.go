package chip

import (
	"math"
	"testing"

	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func newTestChip(t *testing.T, cfg Config, seed uint64) *Chip {
	t.Helper()
	c, err := New(cfg, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.W != 60 || cfg.H != 30 || cfg.HealthBits != 2 {
		t.Errorf("default config = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{W: 0, H: 10, HealthBits: 2, Normal: degrade.DefaultNormal},
		{W: 10, H: 0, HealthBits: 2, Normal: degrade.DefaultNormal},
		{W: 10, H: 10, HealthBits: 0, Normal: degrade.DefaultNormal},
		{W: 10, H: 10, HealthBits: 9, Normal: degrade.DefaultNormal},
		{W: 10, H: 10, HealthBits: 2},
		{W: 10, H: 10, HealthBits: 2, Normal: degrade.DefaultNormal,
			Faults: degrade.FaultPlan{Mode: degrade.FaultUniform, Fraction: 2}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, randx.New(1)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFreshChipFullyHealthy(t *testing.T) {
	c := newTestChip(t, Default(), 1)
	top := 1<<uint(c.HealthBits()) - 1
	for y := 1; y <= c.H(); y++ {
		for x := 1; x <= c.W(); x++ {
			if c.Degradation(x, y) != 1 {
				t.Fatalf("fresh D(%d,%d) = %v", x, y, c.Degradation(x, y))
			}
			if c.Health(x, y) != top {
				t.Fatalf("fresh H(%d,%d) = %d, want %d", x, y, c.Health(x, y), top)
			}
			if c.Force(x, y) != 1 {
				t.Fatalf("fresh F(%d,%d) = %v", x, y, c.Force(x, y))
			}
		}
	}
	if c.TotalActuations() != 0 {
		t.Error("fresh chip must have zero actuations")
	}
}

func TestOffChipReadsZero(t *testing.T) {
	c := newTestChip(t, Default(), 2)
	probes := []geom.Cell{{X: 0, Y: 5}, {X: 61, Y: 5}, {X: 5, Y: 0}, {X: 5, Y: 31}, {X: -1, Y: -1}}
	for _, p := range probes {
		if c.Contains(p.X, p.Y) {
			t.Errorf("Contains(%v) = true", p)
		}
		if c.Degradation(p.X, p.Y) != 0 || c.Force(p.X, p.Y) != 0 || c.Health(p.X, p.Y) != 0 {
			t.Errorf("off-chip cell %v must read zero", p)
		}
		if c.MC(p.X, p.Y) != nil {
			t.Errorf("off-chip MC(%v) must be nil", p)
		}
		if c.Actuations(p.X, p.Y) != 0 {
			t.Errorf("off-chip Actuations(%v) must be 0", p)
		}
	}
}

func TestActuateIncrementsCounters(t *testing.T) {
	c := newTestChip(t, Default(), 3)
	r := rect(3, 2, 7, 5)
	c.Actuate(r)
	for y := 1; y <= c.H(); y++ {
		for x := 1; x <= c.W(); x++ {
			want := 0
			if r.Contains(geom.Cell{X: x, Y: y}) {
				want = 1
			}
			if got := c.Actuations(x, y); got != want {
				t.Fatalf("n(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
	if c.TotalActuations() != r.Area() {
		t.Errorf("total = %d, want %d", c.TotalActuations(), r.Area())
	}
}

func TestActuateOverlappingPatternsOncePerCycle(t *testing.T) {
	c := newTestChip(t, Default(), 4)
	a := rect(1, 1, 4, 4)
	b := rect(3, 3, 6, 6)
	c.Actuate(a, b)
	if got := c.Actuations(3, 3); got != 1 {
		t.Errorf("overlapped cell actuated %d times in one cycle, want 1", got)
	}
	if got := c.TotalActuations(); got != 16+16-4 {
		t.Errorf("total = %d, want 28", got)
	}
}

func TestActuateClipsToChip(t *testing.T) {
	c := newTestChip(t, Default(), 5)
	c.Actuate(rect(-5, -5, 2, 2)) // partially off-chip
	if got := c.Actuations(1, 1); got != 1 {
		t.Errorf("n(1,1) = %d", got)
	}
	if got := c.TotalActuations(); got != 4 {
		t.Errorf("total = %d, want 4 (clipped)", got)
	}
	c.Actuate(rect(100, 100, 120, 120)) // fully off-chip
	if got := c.TotalActuations(); got != 4 {
		t.Errorf("off-chip actuation changed total to %d", got)
	}
}

func TestDegradationDecreasesWithWear(t *testing.T) {
	c := newTestChip(t, Default(), 6)
	r := rect(10, 10, 12, 12)
	before := c.Degradation(11, 11)
	for i := 0; i < 400; i++ {
		c.Actuate(r)
	}
	after := c.Degradation(11, 11)
	if !(after < before) {
		t.Errorf("degradation did not decrease: %v -> %v", before, after)
	}
	if c.Health(11, 11) >= 1<<uint(c.HealthBits()) {
		t.Error("health out of range after wear")
	}
	// Unworn cells are untouched.
	if c.Degradation(30, 20) != 1 {
		t.Error("unworn cell degraded")
	}
}

func TestForceIsDegradationSquared(t *testing.T) {
	c := newTestChip(t, Default(), 7)
	r := rect(5, 5, 8, 8)
	for i := 0; i < 250; i++ {
		c.Actuate(r)
	}
	for y := 5; y <= 8; y++ {
		for x := 5; x <= 8; x++ {
			d := c.Degradation(x, y)
			if math.Abs(c.Force(x, y)-d*d) > 1e-12 {
				t.Fatalf("F != D² at (%d,%d)", x, y)
			}
		}
	}
}

func TestObservedForceFieldQuantized(t *testing.T) {
	c := newTestChip(t, Default(), 8)
	r := rect(5, 5, 8, 8)
	for i := 0; i < 300; i++ {
		c.Actuate(r)
	}
	obs := c.ObservedForceField()
	truth := c.TrueForceField()
	// The observed field must be a deterministic function of the health
	// code: cells with equal codes report equal observed force.
	type cellF struct{ o, tr float64 }
	byCode := map[int]float64{}
	for y := 5; y <= 8; y++ {
		for x := 5; x <= 8; x++ {
			code := c.Health(x, y)
			if prev, ok := byCode[code]; ok && prev != obs(x, y) {
				t.Fatalf("same code %d, different observed force", code)
			}
			byCode[code] = obs(x, y)
		}
	}
	_ = truth
	// Off-chip observed force is zero.
	if obs(0, 0) != 0 || obs(100, 100) != 0 {
		t.Error("off-chip observed force must be 0")
	}
	var _ cellF
}

func TestHealthHashDetectsChange(t *testing.T) {
	// Use a fast-degrading chip so a health code actually changes.
	cfg := Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	c := newTestChip(t, cfg, 9)
	region := rect(5, 5, 10, 10)
	h0 := c.HealthHash(region)
	if h1 := c.HealthHash(region); h1 != h0 {
		t.Fatal("hash must be deterministic")
	}
	for i := 0; i < 50; i++ {
		c.Actuate(rect(6, 6, 7, 7))
	}
	if c.HealthHash(region) == h0 {
		t.Error("hash did not change after health degradation")
	}
	// Wear outside the region does not affect its hash.
	h2 := c.HealthHash(region)
	for i := 0; i < 50; i++ {
		c.Actuate(rect(30, 20, 35, 25))
	}
	if c.HealthHash(region) != h2 {
		t.Error("hash changed from out-of-region wear")
	}
}

func TestMinHealth(t *testing.T) {
	cfg := Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	c := newTestChip(t, cfg, 10)
	if got := c.MinHealth(rect(1, 1, 10, 10)); got != 3 {
		t.Errorf("fresh MinHealth = %d, want 3", got)
	}
	for i := 0; i < 200; i++ {
		c.Actuate(rect(4, 4, 5, 5))
	}
	if got := c.MinHealth(rect(1, 1, 10, 10)); got != 0 {
		t.Errorf("worn MinHealth = %d, want 0", got)
	}
	// Empty/off-chip region returns the top code.
	if got := c.MinHealth(rect(200, 200, 210, 210)); got != 3 {
		t.Errorf("off-chip MinHealth = %d, want 3", got)
	}
}

func TestHardFaultsInjected(t *testing.T) {
	cfg := Default()
	cfg.Faults = degrade.FaultPlan{
		Mode: degrade.FaultUniform, Fraction: 0.1, FailAfterLo: 1, FailAfterHi: 5,
	}
	c := newTestChip(t, cfg, 11)
	// Actuate the whole chip enough to trigger every hard fault.
	for i := 0; i < 5; i++ {
		c.Actuate(c.Bounds())
	}
	dead := 0
	for y := 1; y <= c.H(); y++ {
		for x := 1; x <= c.W(); x++ {
			if c.Degradation(x, y) == 0 {
				dead++
			}
		}
	}
	want := int(math.Round(0.1 * 60 * 30))
	if dead != want {
		t.Errorf("dead MCs = %d, want %d", dead, want)
	}
}

func TestMatricesShape(t *testing.T) {
	c := newTestChip(t, Default(), 12)
	hm := c.HealthMatrix()
	dm := c.DegradationMatrix()
	if len(hm) != 30 || len(hm[0]) != 60 {
		t.Errorf("health matrix shape %dx%d", len(hm), len(hm[0]))
	}
	if len(dm) != 30 || len(dm[0]) != 60 {
		t.Errorf("degradation matrix shape %dx%d", len(dm), len(dm[0]))
	}
	// Mutating the copies must not affect the chip.
	hm[0][0] = -99
	if c.Health(1, 1) == -99 {
		t.Error("HealthMatrix must return a copy")
	}
}

func TestNewChipDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Faults = degrade.FaultPlan{Mode: degrade.FaultClustered, Fraction: 0.05, FailAfterLo: 5, FailAfterHi: 50}
	a := newTestChip(t, cfg, 77)
	b := newTestChip(t, cfg, 77)
	for y := 1; y <= a.H(); y++ {
		for x := 1; x <= a.W(); x++ {
			ma, mb := a.MC(x, y), b.MC(x, y)
			if ma.Params != mb.Params || ma.FailAt != mb.FailAt {
				t.Fatalf("chips from same seed differ at (%d,%d)", x, y)
			}
		}
	}
}

func TestBounds(t *testing.T) {
	c := newTestChip(t, Default(), 13)
	if c.Bounds() != rect(1, 1, 60, 30) {
		t.Errorf("Bounds = %v", c.Bounds())
	}
}

// flipModel is a FaultModel stub: it halves physical degradation everywhere
// and decrements every health reading, recording the actuation counts it was
// consulted with.
type flipModel struct {
	physCalls, senseCalls int
	lastN                 int
}

func (m *flipModel) PhysicalDegradation(x, y, n int, d float64) float64 {
	m.physCalls++
	m.lastN = n
	return d / 2
}

func (m *flipModel) SensedHealth(x, y, n, h, bits int) int {
	m.senseCalls++
	if h > 0 {
		return h - 1
	}
	return h
}

// TestAttachFaultsOverlaysReads: an attached fault model perturbs both
// Degradation (and therefore Force and TrueForceField) and Health (and
// therefore HealthHash, MinHealth, ObservedForceField); detaching restores
// fault-free reads.
func TestAttachFaultsOverlaysReads(t *testing.T) {
	c := newTestChip(t, Default(), 5)
	cleanD := c.Degradation(10, 10)
	cleanH := c.Health(10, 10)
	cleanHash := c.HealthHash(c.Bounds())
	m := &flipModel{}
	c.AttachFaults(m)
	if got := c.Degradation(10, 10); math.Abs(got-cleanD/2) > 1e-12 {
		t.Errorf("faulted degradation = %v, want %v", got, cleanD/2)
	}
	if got := c.Force(10, 10); math.Abs(got-(cleanD/2)*(cleanD/2)) > 1e-12 {
		t.Errorf("faulted force = %v", got)
	}
	if got := c.Health(10, 10); got != cleanH-1 {
		t.Errorf("faulted health = %d, want %d", got, cleanH-1)
	}
	if c.HealthHash(c.Bounds()) == cleanHash {
		t.Error("health hash unchanged under a health-perturbing fault model")
	}
	if got := c.MinHealth(c.Bounds()); got != cleanH-1 {
		t.Errorf("faulted MinHealth = %d, want %d", got, cleanH-1)
	}
	if m.physCalls == 0 || m.senseCalls == 0 {
		t.Error("fault model never consulted")
	}
	c.AttachFaults(nil)
	if c.Degradation(10, 10) != cleanD || c.Health(10, 10) != cleanH {
		t.Error("detaching did not restore fault-free reads")
	}
	if c.HealthHash(c.Bounds()) != cleanHash {
		t.Error("detaching did not restore the health hash")
	}
}

// TestFaultModelSeesActuationCount: the overlay receives the cell's current
// actuation count, which epoch-bucketed sensor faults depend on.
func TestFaultModelSeesActuationCount(t *testing.T) {
	c := newTestChip(t, Default(), 5)
	m := &flipModel{}
	c.AttachFaults(m)
	for i := 0; i < 7; i++ {
		c.Actuate(rect(3, 3, 3, 3))
	}
	c.Degradation(3, 3)
	if m.lastN != 7 {
		t.Errorf("fault model saw n=%d, want 7", m.lastN)
	}
}

// TestSnapshotForceFieldCarriesFaults: a snapshot taken under an attached
// fault model bakes the perturbed readings in — background synthesis
// workers plan against the faulted observation, like the live path.
func TestSnapshotForceFieldCarriesFaults(t *testing.T) {
	c := newTestChip(t, Default(), 5)
	clean := c.SnapshotForceField(rect(5, 5, 10, 10))(7, 7)
	c.AttachFaults(&flipModel{})
	faulted := c.SnapshotForceField(rect(5, 5, 10, 10))(7, 7)
	if clean == faulted {
		t.Error("snapshot ignored the attached fault model")
	}
}
