package chip

import (
	"bytes"
	"strings"
	"testing"

	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
)

func TestChipStateRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Faults = degrade.FaultPlan{Mode: degrade.FaultClustered, Fraction: 0.05, FailAfterLo: 5, FailAfterHi: 50}
	c, err := New(cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wear it a little so counters are non-trivial.
	for i := 0; i < 30; i++ {
		c.Actuate(geom.Rect{XA: 5, YA: 5, XB: 12, YB: 9})
	}
	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.W() != c.W() || back.H() != c.H() || back.HealthBits() != c.HealthBits() {
		t.Fatal("geometry lost")
	}
	for y := 1; y <= c.H(); y++ {
		for x := 1; x <= c.W(); x++ {
			a, b := c.MC(x, y), back.MC(x, y)
			if a.Params != b.Params || a.N != b.N || a.FailAt != b.FailAt {
				t.Fatalf("cell (%d,%d) state lost: %+v vs %+v", x, y, a, b)
			}
		}
	}
	// The restored chip behaves identically.
	if back.TotalActuations() != c.TotalActuations() {
		t.Error("wear total mismatch")
	}
	if back.HealthHash(back.Bounds()) != c.HealthHash(c.Bounds()) {
		t.Error("health hash mismatch")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":9}`,
		`{"version":1,"w":0,"h":5,"bits":2,"cells":[]}`,
		`{"version":1,"w":2,"h":2,"bits":2,"cells":[]}`,
		`{"version":1,"w":1,"h":1,"bits":2,"cells":[{"tau":1.5,"c":10}]}`,
		`{"version":1,"w":1,"h":1,"bits":2,"cells":[{"tau":0.5,"c":10,"n":-3}]}`,
	}
	for _, s := range cases {
		if _, err := LoadState(strings.NewReader(s)); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}
