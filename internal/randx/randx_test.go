package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("chip")
	b := root.Split("trial")
	if a.Seed() == b.Seed() {
		t.Fatal("differently labeled splits share a seed")
	}
	// Splitting is stable: same label gives the same stream.
	a2 := New(7).Split("chip")
	for i := 0; i < 16; i++ {
		if a.Float64() != a2.Float64() {
			t.Fatal("split stream not stable across runs")
		}
	}
}

func TestSplitNStability(t *testing.T) {
	root := New(9)
	s3 := root.SplitN("trial", 3)
	s4 := root.SplitN("trial", 4)
	if s3.Seed() == s4.Seed() {
		t.Fatal("indexed splits share a seed")
	}
	again := New(9).SplitN("trial", 3)
	if again.Seed() != s3.Seed() {
		t.Fatal("SplitN not stable")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(200, 500)
		if v < 200 || v >= 500 {
			t.Fatalf("Uniform(200,500) out of range: %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Uniform(0.5, 0.9)
	}
	mean := sum / n
	if math.Abs(mean-0.7) > 0.005 {
		t.Errorf("Uniform(0.5,0.9) mean = %v, want ≈0.7", mean)
	}
}

func TestIntRange(t *testing.T) {
	s := New(17)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

func TestChooseWeighted(t *testing.T) {
	s := New(23)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Choose([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("weight ratio = %v, want ≈2", ratio)
	}
}

func TestChooseZeroTotalUniform(t *testing.T) {
	s := New(29)
	counts := [4]int{}
	for i := 0; i < 8000; i++ {
		counts[s.Choose([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1500 {
			t.Errorf("outcome %d underrepresented under zero weights: %d", i, c)
		}
	}
}

func TestChoosePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	New(1).Choose([]float64{1, -1})
}

func TestNormalMoments(t *testing.T) {
	s := New(31)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(37)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
