// Package randx centralizes pseudo-random number generation for the MEDA
// simulator and experiment harness. Every stochastic component draws from a
// Source created from an explicit seed, so that each experiment is exactly
// reproducible from the seed that the harness prints.
//
// Sources are splittable: Split derives an independent child stream from a
// parent stream and a string label, so concurrent trials never share state
// and adding a consumer does not perturb the draws seen by the others.
package randx

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic stream of pseudo-random numbers. It wraps
// math/rand with explicit seeding and label-based splitting; it is not safe
// for concurrent use (split one Source per goroutine instead).
type Source struct {
	rng  *rand.Rand
	seed uint64
}

// New returns a Source seeded from the given seed.
func New(seed uint64) *Source {
	return &Source{rng: rand.New(rand.NewSource(int64(seed))), seed: seed}
}

// Seed returns the seed this source was created from.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives an independent child stream identified by label. The child
// seed is a hash of the parent seed and the label, so the mapping is stable
// across runs and insensitive to the order in which children are created.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(s.seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// SplitN derives the i-th indexed child of a labeled family, e.g. one stream
// per trial: src.SplitN("trial", i).
func (s *Source) SplitN(label string, i int) *Source {
	h := fnv.New64a()
	var b [8]byte
	for j := 0; j < 8; j++ {
		b[j] = byte(s.seed >> (8 * j))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	for j := 0; j < 8; j++ {
		b[j] = byte(uint64(i) >> (8 * j))
	}
	h.Write(b[:])
	return New(h.Sum64())
}

// Float64 returns a uniform draw from [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform draw from [lo, hi), i.e. x ~ U(lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.Intn(n) }

// IntRange returns a uniform integer in [lo, hi] (inclusive).
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("randx: IntRange with hi < lo")
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Normal returns a draw from the normal distribution N(mu, sigma²).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Choose returns a random index in [0, len(weights)) with probability
// proportional to weights[i]. All weights must be non-negative; if they sum
// to zero the draw is uniform.
func (s *Source) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("randx: negative weight")
		}
		total += w
	}
	if isZero(total) {
		return s.IntN(len(weights))
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle shuffles the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// isZero is an exact sentinel comparison (medalint floatcmp): an all-zero
// weight vector is degenerate by construction, not by rounding.
func isZero(x float64) bool { return x == 0 }
