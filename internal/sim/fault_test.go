package sim

import (
	"bytes"
	"fmt"
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/fault"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/sched"
	"meda/internal/telemetry"
)

// faultTrace is simTrace under fault injection: a fresh chip, the full
// graceful-degradation router ladder, and a mixed fault plan derived from
// the seed. Returns the byte-exact cycle transcript.
func faultTrace(t *testing.T, bench assay.Benchmark, seed uint64, rate float64) []byte {
	t.Helper()
	src := randx.New(seed)
	c, err := chip.New(robustChipConfig(), src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	router := sched.NewFallback(sched.NewAdaptive(), sched.NewBaseline())
	cfg := DefaultConfig().WithFaults(fault.Mixed(seed, rate, fault.AllKinds))
	r := NewRunner(cfg, c, router, src.Split("sim"))
	var buf bytes.Buffer
	r.Hook = func(k int, ps []geom.Rect) {
		fmt.Fprintf(&buf, "%d:", k)
		for _, p := range ps {
			fmt.Fprintf(&buf, " %v", p)
		}
		buf.WriteByte('\n')
	}
	exec, err := r.Execute(compile(t, bench, 16))
	if err != nil {
		t.Fatalf("%v: %v", bench, err)
	}
	fmt.Fprintf(&buf, "cycles=%d stalls=%d resyn=%d jobs=%d div=%d deg=%d haz=%d ok=%v\n",
		exec.Cycles, exec.Stalls, exec.Resyntheses, exec.JobsCompleted,
		exec.Divergences, exec.DegradedJobs, exec.HazardViolations, exec.Success)
	return buf.Bytes()
}

// TestFaultTraceDeterminism: the same fault seed and assay produce
// byte-identical traces across two runs — the acceptance criterion for the
// fault subsystem's stateless-hash design. A shared mutable RNG anywhere in
// the injection path (whose consumption order depends on goroutine timing
// or map iteration) breaks this immediately.
func TestFaultTraceDeterminism(t *testing.T) {
	for _, bench := range []assay.Benchmark{assay.MasterMix, assay.SerialDilution} {
		first := faultTrace(t, bench, 2021, 0.05)
		second := faultTrace(t, bench, 2021, 0.05)
		if !bytes.Equal(first, second) {
			t.Errorf("%v: same fault seed produced different traces (%d vs %d bytes)",
				bench, len(first), len(second))
		}
	}
}

// TestFaultTraceDiffersBySeed: different fault seeds must actually change
// the execution — otherwise the injection layer is dead code.
func TestFaultTraceDiffersBySeed(t *testing.T) {
	a := faultTrace(t, assay.SerialDilution, 2021, 0.2)
	b := faultTrace(t, assay.SerialDilution, 7777, 0.2)
	if bytes.Equal(a, b) {
		t.Error("different fault seeds produced identical traces at a 20% rate")
	}
}

// TestFaultTrialAcceptance runs the six-assay evaluation suite under a 5%
// mixed fault rate: every assay must complete hazard-free with bounded
// completion-time inflation, and the run must record at least one fallback
// event in telemetry (otherwise the injected control-plane faults never
// exercised the degradation ladder and the trial proved nothing).
func TestFaultTrialAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("six-assay sweep in -short mode")
	}
	before := telemetry.Default().Snapshot().Counters
	cfg := DefaultFaultTrialConfig()
	cfg.Trials = 1
	results, err := RunFaultTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(assay.EvaluationBenchmarks) {
		t.Fatalf("got %d results, want %d", len(results), len(assay.EvaluationBenchmarks))
	}
	for _, res := range results {
		if res.Violation != "" {
			t.Errorf("%v trial %d: %s (plan %+v)", res.Benchmark, res.Trial, res.Violation, res.Plan)
		}
	}
	after := telemetry.Default().Snapshot().Counters
	fallbacks := int64(0)
	for _, name := range []string{
		"sched.fallback.retries", "sched.fallback.recovered",
		"sched.fallback.final", "sched.fallback.degraded",
	} {
		fallbacks += after[name] - before[name]
	}
	if fallbacks == 0 {
		t.Error("six-assay sweep recorded no fallback events in telemetry")
	}
}

// TestFaultTrialAcceptanceConcurrent runs the same sweep on the concurrent
// executor: injected faults (all three kinds) must not let concurrently
// routed droplets violate the fluidic constraints, every assay must still
// complete, and fault-induced inflation stays within the same bound — now
// measured against a concurrent clean run, so the parallelism cannot mask
// slowdowns.
func TestFaultTrialAcceptanceConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("six-assay sweep in -short mode")
	}
	cfg := DefaultFaultTrialConfig()
	cfg.Trials = 1
	cfg.Concurrent = true
	results, err := RunFaultTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(assay.EvaluationBenchmarks) {
		t.Fatalf("got %d results, want %d", len(results), len(assay.EvaluationBenchmarks))
	}
	for _, res := range results {
		if res.Violation != "" {
			t.Errorf("%v trial %d: %s (plan %+v)", res.Benchmark, res.Trial, res.Violation, res.Plan)
		}
		if res.Faulted.HazardViolations != 0 {
			t.Errorf("%v trial %d: %d hazard violations under concurrent faulted execution",
				res.Benchmark, res.Trial, res.Faulted.HazardViolations)
		}
	}
}

// TestFaultTrialViolationDetection: an absurd inflation bound must be
// reported as a violation — the trial harness's alarm actually fires.
func TestFaultTrialViolationDetection(t *testing.T) {
	cfg := DefaultFaultTrialConfig()
	cfg.Trials = 1
	cfg.Benchmarks = []assay.Benchmark{assay.MasterMix}
	cfg.Inflation = 0.001
	cfg.Slack = 1
	results, err := RunFaultTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Violations(results) != 1 {
		t.Errorf("inflation bound of ~1 cycle not flagged: %+v", results)
	}
}

// TestWithFaultsDefaults: WithFaults enables the degradation machinery with
// its documented defaults without clobbering explicit settings.
func TestWithFaultsDefaults(t *testing.T) {
	cfg := DefaultConfig().WithFaults(fault.Mixed(1, 0.05, fault.AllKinds))
	if cfg.MODeadline != 350 || cfg.DivergenceLimit != 24 || !cfg.CheckHazards {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	custom := DefaultConfig()
	custom.MODeadline = 99
	custom.DivergenceLimit = 7
	custom = custom.WithFaults(fault.Plan{Transient: 0.1})
	if custom.MODeadline != 99 || custom.DivergenceLimit != 7 {
		t.Errorf("explicit settings clobbered: %+v", custom)
	}
	if !custom.Faults.Enabled() {
		t.Error("fault plan not attached")
	}
}

// TestAuditHazards exercises the post-motion audit directly.
func TestAuditHazards(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 1)
	r.Cfg.CheckHazards = true
	ok := []*dropletRT{
		{rect: geom.Rect{XA: 1, YA: 1, XB: 4, YB: 4}, mo: 0},
		{rect: geom.Rect{XA: 10, YA: 10, XB: 13, YB: 13}, mo: 1},
	}
	if v := r.auditHazards(ok); v != 0 {
		t.Errorf("clean state audited %d violations", v)
	}
	overlap := []*dropletRT{
		{rect: geom.Rect{XA: 1, YA: 1, XB: 4, YB: 4}, mo: 0},
		{rect: geom.Rect{XA: 3, YA: 3, XB: 6, YB: 6}, mo: 1},
	}
	if v := r.auditHazards(overlap); v != 1 {
		t.Errorf("cross-operation overlap audited %d violations, want 1", v)
	}
	sameMO := []*dropletRT{
		{rect: geom.Rect{XA: 1, YA: 1, XB: 4, YB: 4}, mo: 2},
		{rect: geom.Rect{XA: 3, YA: 3, XB: 6, YB: 6}, mo: 2},
	}
	if v := r.auditHazards(sameMO); v != 0 {
		t.Errorf("same-operation rendezvous audited %d violations, want 0", v)
	}
	offChip := []*dropletRT{
		{rect: geom.Rect{XA: 58, YA: 28, XB: 62, YB: 32}, mo: 0},
	}
	if v := r.auditHazards(offChip); v != 1 {
		t.Errorf("off-array droplet audited %d violations, want 1", v)
	}
}

// TestDegradedJobRoutesViaFinalTier: a job marked degraded fetches its
// strategy from the fallback ladder's final tier.
func TestDegradedJobRoutesViaFinalTier(t *testing.T) {
	fb := sched.NewFallback(sched.NewAdaptive(), sched.NewBaseline())
	r := newRunner(t, robustChipConfig(), fb, 5)
	plan := compile(t, assay.MasterMix, 16)
	rj := plan.MOs[0].Jobs[0]
	j := &jobRT{rj: rj, mo: 0, degraded: true, routable: true}
	r.fetch(j, 1, nil, &Execution{})
	if !j.routable || len(j.policy) == 0 {
		t.Fatalf("degraded fetch produced no policy: routable=%v", j.routable)
	}
	if got := fb.Stats().DegradedRoutes; got != 1 {
		t.Errorf("DegradedRoutes = %d, want 1", got)
	}
}
