package sim

import (
	"bytes"
	"strings"
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

// TestSidestepPicksClearMove exercises the knot-dissolving fallback
// directly: a droplet blocked straight ahead must find an unblocked move,
// and report failure when boxed in on all sides.
func TestSidestepPicksClearMove(t *testing.T) {
	src := randx.New(1)
	c, err := chip.New(robustChipConfig(), src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(DefaultConfig(), c, sched.NewBaseline(), src.Split("sim"))
	job := &jobRT{rj: route.RJ{
		Start:  geom.Rect{XA: 5, YA: 5, XB: 7, YB: 7},
		Goal:   geom.Rect{XA: 20, YA: 5, XB: 22, YB: 7},
		Hazard: geom.Rect{XA: 1, YA: 1, XB: 25, YB: 12},
	}, mo: 0}
	me := &dropletRT{rect: geom.Rect{XA: 5, YA: 5, XB: 7, YB: 7}, mo: 0, job: job}
	job.droplet = me
	// A blocker parked immediately east.
	blocker := &dropletRT{rect: geom.Rect{XA: 9, YA: 5, XB: 11, YB: 7}, mo: 1}
	droplets := []*dropletRT{me, blocker}
	intents := []geom.Rect{me.rect, blocker.rect}

	a, target, ok := r.sidestep(me, droplets, intents, 0)
	if !ok {
		t.Fatal("sidestep found no move")
	}
	if r.blockedBy(me, target, droplets, intents, 0) != nil {
		t.Fatalf("sidestep chose a blocked move %v→%v", a, target)
	}

	// Boxed in: blockers on all four sides within the margin.
	boxed := []*dropletRT{me,
		{rect: geom.Rect{XA: 9, YA: 5, XB: 11, YB: 7}, mo: 1},
		{rect: geom.Rect{XA: 1, YA: 5, XB: 3, YB: 7}, mo: 1},
		{rect: geom.Rect{XA: 5, YA: 9, XB: 7, YB: 11}, mo: 1},
		{rect: geom.Rect{XA: 5, YA: 1, XB: 7, YB: 3}, mo: 1},
	}
	boxedIntents := make([]geom.Rect, len(boxed))
	for i, d := range boxed {
		boxedIntents[i] = d.rect
	}
	if _, _, ok := r.sidestep(me, boxed, boxedIntents, 0); ok {
		t.Error("sidestep escaped an impossible box")
	}
}

// TestZoneHealth: the wear-aware activation metric is 1 on a fresh chip and
// drops once the zone is worn.
func TestZoneHealth(t *testing.T) {
	cfg := chip.Default()
	src := randx.New(2)
	c, err := chip.New(cfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(DefaultConfig(), c, sched.NewBaseline(), src.Split("sim"))
	m := &moRT{jobs: []*jobRT{{rj: route.RJ{Hazard: geom.Rect{XA: 1, YA: 1, XB: 10, YB: 10}}}}}
	if h := r.zoneHealth(m); h != 1 {
		t.Errorf("fresh zone health = %v, want 1", h)
	}
	for i := 0; i < 600; i++ {
		c.Actuate(geom.Rect{XA: 1, YA: 1, XB: 10, YB: 10})
	}
	if h := r.zoneHealth(m); h >= 1 {
		t.Errorf("worn zone health = %v, want < 1", h)
	}
	// Empty job list degenerates to healthy.
	if h := r.zoneHealth(&moRT{}); h != 1 {
		t.Errorf("empty zone health = %v", h)
	}
}

// TestWearAwareActivationRuns: the future-work activation order completes
// the suite's assays just like FIFO.
func TestWearAwareActivationRuns(t *testing.T) {
	src := randx.New(3)
	c, err := chip.New(robustChipConfig(), src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WearAwareActivation = true
	r := NewRunner(cfg, c, sched.NewBaseline(), src.Split("sim"))
	exec, err := r.Execute(compile(t, assay.InVitro, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("wear-aware activation failed: %+v", exec)
	}
}

// TestDebugDump: the development dump writes operation and droplet state.
func TestDebugDump(t *testing.T) {
	src := randx.New(4)
	c, err := chip.New(robustChipConfig(), src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(DefaultConfig(), c, sched.NewBaseline(), src.Split("sim"))
	var buf bytes.Buffer
	r.Debug = &buf
	r.DebugEvery = 10
	exec, err := r.Execute(compile(t, assay.CovidRAT, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("execution failed: %+v", exec)
	}
	out := buf.String()
	if !strings.Contains(out, "--- k=10") {
		t.Error("dump missing cycle header")
	}
	if !strings.Contains(out, "droplet") {
		t.Error("dump missing droplet lines")
	}
}
