package sim

import (
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

func robustChipConfig() chip.Config {
	// Near-immortal microelectrodes: isolates scheduler logic from wear.
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	return cfg
}

func newRunner(t *testing.T, cfg chip.Config, router sched.Router, seed uint64) *Runner {
	t.Helper()
	src := randx.New(seed)
	c, err := chip.New(cfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(DefaultConfig(), c, router, src.Split("sim"))
}

func compile(t *testing.T, bench assay.Benchmark, area int) *route.Plan {
	t.Helper()
	a := bench.Build(assay.Layout{W: 60, H: 30}, area)
	plan, err := route.Compile(a, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestExecuteMasterMixBaseline: on a robust chip the baseline completes the
// shortest assay well within the budget.
func TestExecuteMasterMixBaseline(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 1)
	exec, err := r.Execute(compile(t, assay.MasterMix, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("master-mix failed: %+v", exec)
	}
	if exec.Cycles < 10 || exec.Cycles >= 1000 {
		t.Errorf("cycles = %d, implausible", exec.Cycles)
	}
	if exec.JobsCompleted == 0 {
		t.Error("no jobs completed")
	}
}

// TestExecuteAllBenchmarksAdaptive: every evaluation benchmark completes
// under the adaptive router on a robust chip.
func TestExecuteAllBenchmarksAdaptive(t *testing.T) {
	for _, bench := range assay.EvaluationBenchmarks {
		r := newRunner(t, robustChipConfig(), sched.NewAdaptive(), 2)
		exec, err := r.Execute(compile(t, bench, 16))
		if err != nil {
			t.Fatalf("%v: %v", bench, err)
		}
		if !exec.Success {
			t.Errorf("%v failed: %+v", bench, exec)
		}
	}
}

// TestExecuteAllBenchmarksBaseline: the same under the baseline router.
func TestExecuteAllBenchmarksBaseline(t *testing.T) {
	for _, bench := range assay.EvaluationBenchmarks {
		r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 3)
		exec, err := r.Execute(compile(t, bench, 16))
		if err != nil {
			t.Fatalf("%v: %v", bench, err)
		}
		if !exec.Success {
			t.Errorf("%v failed: %+v", bench, exec)
		}
	}
}

// TestCorrelationBenchmarksRun: the Fig. 3 protocols execute at all four
// droplet sizes.
func TestCorrelationBenchmarksRun(t *testing.T) {
	for _, bench := range assay.CorrelationBenchmarks {
		for _, side := range []int{3, 6} {
			r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 4)
			exec, err := r.Execute(compile(t, bench, side*side))
			if err != nil {
				t.Fatalf("%v %d×%d: %v", bench, side, side, err)
			}
			if !exec.Success {
				t.Errorf("%v %d×%d failed: %+v", bench, side, side, exec)
			}
		}
	}
}

// TestWearAccumulatesAcrossExecutions: reusing the chip leaves it more worn.
func TestWearAccumulatesAcrossExecutions(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 5)
	plan := compile(t, assay.MasterMix, 16)
	if _, err := r.Execute(plan); err != nil {
		t.Fatal(err)
	}
	w1 := r.Chip.TotalActuations()
	if w1 == 0 {
		t.Fatal("execution caused no wear")
	}
	if _, err := r.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if r.Chip.TotalActuations() <= w1 {
		t.Error("second execution caused no additional wear")
	}
}

// TestHookObservesActuations: the cycle hook sees every cycle and at least
// one pattern whenever droplets are on-chip.
func TestHookObservesActuations(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 6)
	cycles := 0
	patterns := 0
	r.Hook = func(k int, ps []geom.Rect) {
		cycles++
		patterns += len(ps)
	}
	exec, err := r.Execute(compile(t, assay.CovidRAT, 16))
	if err != nil {
		t.Fatal(err)
	}
	if cycles != exec.Cycles {
		t.Errorf("hook saw %d cycles, exec reports %d", cycles, exec.Cycles)
	}
	if patterns == 0 {
		t.Error("hook saw no actuation patterns")
	}
}

// TestAbortOnTinyBudget: an impossible budget aborts with Cycles = KMax.
func TestAbortOnTinyBudget(t *testing.T) {
	src := randx.New(7)
	c, err := chip.New(robustChipConfig(), src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.KMax = 5
	r := NewRunner(cfg, c, sched.NewBaseline(), src.Split("sim"))
	exec, err := r.Execute(compile(t, assay.SerialDilution, 16))
	if err != nil {
		t.Fatal(err)
	}
	if exec.Success {
		t.Error("serial dilution cannot finish in 5 cycles")
	}
	if exec.Cycles != 5 {
		t.Errorf("aborted cycles = %d, want 5", exec.Cycles)
	}
}

// TestAdaptiveSurvivesFastDegradation: on a rapidly wearing chip the
// adaptive router should finish a medium assay while re-synthesizing.
func TestAdaptiveSurvivesFastDegradation(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.5, Tau2: 0.9, C1: 200, C2: 500}
	r := newRunner(t, cfg, sched.NewAdaptive(), 8)
	exec, err := r.Execute(compile(t, assay.CovidPCR, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Errorf("adaptive failed on degrading chip: %+v", exec)
	}
}

// TestChipMismatchRejected: plans must match the chip dimensions.
func TestChipMismatchRejected(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 9)
	a := assay.MasterMix.Build(assay.Layout{W: 40, H: 20}, 16)
	plan, err := route.Compile(a, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(plan); err == nil {
		t.Error("mismatched plan accepted")
	}
}

// TestDeterministicReplay: identical seeds reproduce identical executions.
func TestDeterministicReplay(t *testing.T) {
	run := func() Execution {
		r := newRunner(t, robustChipConfig(), sched.NewAdaptive(), 11)
		exec, err := r.Execute(compile(t, assay.CEP, 16))
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("executions differ: %+v vs %+v", a, b)
	}
}

// TestRunTrialFiveSuccesses: a robust chip yields five successes and no
// failure.
func TestRunTrialFiveSuccesses(t *testing.T) {
	cfg := DefaultTrialConfig(13)
	cfg.Chip = robustChipConfig()
	res, err := RunTrial(cfg, assay.MasterMix, func() sched.Router { return sched.NewBaseline() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 5 || res.FirstFailure != 0 {
		t.Errorf("trial = %+v, want 5 clean successes", res)
	}
	if len(res.Cycles) != 5 {
		t.Errorf("recorded %d executions, want 5", len(res.Cycles))
	}
}

// TestRunTrialBaselineWearsOut: with aggressive degradation and the
// baseline router, repeated serial dilutions should eventually fail (the
// baseline reuses the same cells every run).
func TestRunTrialBaselineWearsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cfg := DefaultTrialConfig(17)
	cfg.Chip.Normal = degrade.ParamRange{Tau1: 0.3, Tau2: 0.5, C1: 50, C2: 120}
	res, err := RunTrial(cfg, assay.SerialDilution, func() sched.Router { return sched.NewBaseline() })
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFailure == 0 {
		t.Errorf("baseline survived aggressive wear: %+v", res.Successes)
	}
}

// TestCollisionsPreventOverlap: droplets of different operations never
// overlap. Same-operation siblings are *meant* to meet (that is how a mix
// coalesces), so a small number of overlapping pattern pairs — bounded by
// the number of merge rendezvous — is expected; runaway overlap would signal
// a broken collision guard.
func TestCollisionsPreventOverlap(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewBaseline(), 19)
	// InVitro runs four independent chains concurrently: the stress case.
	plan := compile(t, assay.InVitro, 16)
	overlaps := 0
	r.Hook = func(k int, ps []geom.Rect) {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if ps[i].Overlaps(ps[j]) {
					overlaps++
				}
			}
		}
	}
	exec, err := r.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("in-vitro failed: %+v", exec)
	}
	// Four mixes ⇒ at most a handful of rendezvous overlap cycles.
	if overlaps > 4*10 {
		t.Errorf("%d overlapping actuation pairs observed — collision guard broken", overlaps)
	}
}
