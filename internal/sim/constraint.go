// Fluidic-constraint checker for concurrent droplet routing. The DMFB
// literature splits droplet non-interference into a static constraint (the
// positions two droplets occupy after a cycle's moves must stay separated)
// and a dynamic constraint (a droplet's next position must also stay clear of
// every other droplet's current position, so no transient adjacency arises
// mid-transfer). Both reduce to the same envelope test: two rectangles
// conflict when they come within the collision margin of each other. The
// per-cycle action selection in sim.go enforces these constraints
// incrementally (each droplet's intended move is checked against the regions
// already committed this cycle), and the concurrent activation rule in
// concurrent.go uses the same envelope test at operation granularity.
package sim

import "meda/internal/geom"

// zoneConflict reports whether two droplet rectangles violate the fluidic
// separation envelope at the given margin: they overlap or come within
// margin cells of each other. The test is symmetric (expanding either side
// by the margin tests the same Chebyshev separation) and commutes with
// translations and the dihedral chip symmetries, since Expand is an
// isometry-equivariant inflation.
//
//meda:deterministic
func zoneConflict(a, b geom.Rect, margin int) bool {
	return a.Expand(margin).Overlaps(b)
}

// HazardFree reports whether the simultaneous single-cycle transitions
// curA→nextA and curB→nextB of two droplets belonging to different
// operations satisfy the fluidic constraints at the given margin:
//
//	static:  nextA and nextB stay separated — the droplets must not be able
//	         to merge accidentally after both moves complete;
//	dynamic: nextA stays clear of curB and nextB stays clear of curA — at no
//	         instant during the transfer is a droplet adjacent to where the
//	         other one still is.
//
// A droplet that holds in place has cur == next, collapsing the three tests
// into one. The predicate is symmetric in the two droplets and invariant
// under any isometry applied to all four rectangles.
//
//meda:deterministic
func HazardFree(curA, nextA, curB, nextB geom.Rect, margin int) bool {
	if zoneConflict(nextA, nextB, margin) {
		return false
	}
	if zoneConflict(nextA, curB, margin) {
		return false
	}
	if zoneConflict(nextB, curA, margin) {
		return false
	}
	return true
}
