// Execution checkpoints: a periodic observation hook the fleet service
// (internal/serve) uses to journal in-flight assay progress, publish
// telemetry events, and abort executions cooperatively (cancellation and
// crash simulation). The hook is deliberately an observer of the running
// execution, not a serializer of it: resumption is deterministic replay —
// an execution is fully determined by the chip state at its start, the
// compiled plan, the configuration, and the RNG seed, so a restarted
// controller re-executes from the journaled start state and passes through
// byte-identical checkpoints (which the resume path can verify against the
// journal).
package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Checkpoint is a point-in-time observation of a running execution.
type Checkpoint struct {
	// Exec is a copy of the execution counters so far; Exec.Cycles is the
	// current cycle.
	Exec Execution
	// HealthHash fingerprints the observed health matrix over the whole
	// array at this cycle. Two executions that agree on every checkpoint's
	// (Exec, HealthHash) pair have actuated the chip identically.
	HealthHash uint64
	// Droplets is the number of droplets on the array at this cycle.
	Droplets int
}

// Digest folds the checkpoint into 64 bits for compact journaling: resume
// verification compares digests, not whole structs.
//
//meda:deterministic
func (cp Checkpoint) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(cp.Exec.Cycles))
	word(uint64(cp.Exec.JobsCompleted))
	word(uint64(cp.Exec.Stalls))
	word(uint64(cp.Exec.Resyntheses))
	word(uint64(cp.Exec.Divergences))
	word(uint64(cp.Exec.HazardViolations))
	word(uint64(cp.Exec.Deadlocks))
	word(uint64(cp.Droplets))
	word(cp.HealthHash)
	return h.Sum64()
}

// CheckpointConfig attaches a checkpoint hook to a Runner. Every Every
// cycles (and on the execution's final cycle) Fn observes the execution; a
// non-nil return aborts the execution, which surfaces the error from
// Execute wrapped in a CheckpointAbort.
type CheckpointConfig struct {
	Every int
	Fn    func(Checkpoint) error
}

// CheckpointAbort is the error Execute returns when a checkpoint hook
// aborted the execution; Cause is the hook's error.
type CheckpointAbort struct {
	Cycle int
	Cause error
}

func (e *CheckpointAbort) Error() string {
	return fmt.Sprintf("sim: execution aborted by checkpoint hook at cycle %d: %v", e.Cycle, e.Cause)
}

// Unwrap exposes the hook's error to errors.Is/As.
func (e *CheckpointAbort) Unwrap() error { return e.Cause }

// checkpoint invokes the configured hook for cycle k, if due.
func (r *Runner) checkpoint(k int, exec *Execution, droplets int, final bool) error {
	cfg := r.Cfg.Checkpoint
	if cfg.Fn == nil {
		return nil
	}
	every := cfg.Every
	if every <= 0 {
		every = 1
	}
	if !final && k%every != 0 {
		return nil
	}
	cp := Checkpoint{Exec: *exec, HealthHash: r.Chip.HealthHash(r.Chip.Bounds()), Droplets: droplets}
	if err := cfg.Fn(cp); err != nil {
		return &CheckpointAbort{Cycle: k, Cause: err}
	}
	return nil
}
