package sim

import (
	"testing"

	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
)

// FuzzHazardZones property-checks the fluidic-constraint envelope that the
// concurrent executor's safety argument rests on:
//
//   - zoneConflict agrees with the first-principles Chebyshev-gap definition
//     (two rectangles conflict iff their axis gaps are both within margin);
//   - zoneConflict and HazardFree are symmetric in the two droplets;
//   - both are invariant under translations;
//   - both are invariant under the dihedral transform that synth.Canonicalize
//     derives for a job covering the droplets, and that transform round-trips
//     (Invert ∘ Apply = id) and is idempotent on the canonical job — the
//     property that makes the canonical strategy cache sound.
func FuzzHazardZones(f *testing.F) {
	f.Add(int8(2), int8(3), int8(8), int8(3), int8(1), int8(0), int8(-1), int8(0), int8(5), int8(-7), uint8(4), uint8(4), uint8(4), uint8(4), uint8(1))
	f.Add(int8(0), int8(0), int8(4), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), uint8(3), uint8(3), uint8(3), uint8(3), uint8(0))
	f.Add(int8(-5), int8(-5), int8(20), int8(20), int8(2), int8(2), int8(-2), int8(-2), int8(30), int8(30), uint8(2), uint8(5), uint8(5), uint8(2), uint8(3))
	f.Add(int8(1), int8(1), int8(1), int8(1), int8(0), int8(1), int8(1), int8(0), int8(-3), int8(4), uint8(1), uint8(1), uint8(2), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, dax, day, dbx, dby, tx, ty int8, aw, ah, bw, bh, margin uint8) {
		rect := func(x, y int8, w, h uint8) geom.Rect {
			return geom.NewRect(int(x), int(y), int(x)+int(w%6), int(y)+int(h%6))
		}
		curA := rect(ax, ay, aw, ah)
		curB := rect(bx, by, bw, bh)
		nextA := curA.Translate(int(dax)%3, int(day)%3)
		nextB := curB.Translate(int(dbx)%3, int(dby)%3)
		m := int(margin % 4)

		// Reference definition: the rectangles conflict iff neither axis gap
		// exceeds the margin (Chebyshev separation ≤ margin).
		gapConflict := func(a, b geom.Rect) bool {
			return b.XA-a.XB <= m && a.XA-b.XB <= m && b.YA-a.YB <= m && a.YA-b.YB <= m
		}
		if zoneConflict(curA, curB, m) != gapConflict(curA, curB) {
			t.Fatalf("zoneConflict(%v, %v, %d) disagrees with Chebyshev-gap definition", curA, curB, m)
		}

		// Symmetry.
		if zoneConflict(curA, curB, m) != zoneConflict(curB, curA, m) {
			t.Fatalf("zoneConflict not symmetric for %v, %v at margin %d", curA, curB, m)
		}
		free := HazardFree(curA, nextA, curB, nextB, m)
		if free != HazardFree(curB, nextB, curA, nextA, m) {
			t.Fatalf("HazardFree not symmetric for A=%v→%v B=%v→%v at margin %d", curA, nextA, curB, nextB, m)
		}

		// Translation invariance.
		dx, dy := int(tx), int(ty)
		if free != HazardFree(curA.Translate(dx, dy), nextA.Translate(dx, dy),
			curB.Translate(dx, dy), nextB.Translate(dx, dy), m) {
			t.Fatalf("HazardFree not translation-invariant under (%d,%d) for A=%v→%v B=%v→%v margin %d",
				dx, dy, curA, nextA, curB, nextB, m)
		}

		// D4 invariance via the canonicalization transform. Build a job whose
		// hazard window covers everything, canonicalize it, and push all four
		// rectangles through the resulting isometry.
		hazard := curA.Union(nextA).Union(curB).Union(nextB).Expand(1)
		rj := route.RJ{Start: curA, Goal: nextA, Hazard: hazard}
		canon, tr := synth.Canonicalize(rj)
		if canon.Hazard.XA != 1 || canon.Hazard.YA != 1 {
			t.Fatalf("canonical hazard window %v not anchored at (1,1)", canon.Hazard)
		}
		if got := tr.Apply(rj.Hazard); got != canon.Hazard {
			t.Fatalf("transform maps hazard %v to %v, canonical says %v", rj.Hazard, got, canon.Hazard)
		}
		for _, r := range []geom.Rect{curA, nextA, curB, nextB} {
			if back := tr.Invert(tr.Apply(r)); back != r {
				t.Fatalf("transform round-trip moved %v to %v", r, back)
			}
		}
		if free != HazardFree(tr.Apply(curA), tr.Apply(nextA), tr.Apply(curB), tr.Apply(nextB), m) {
			t.Fatalf("HazardFree not D4-invariant under %+v for A=%v→%v B=%v→%v margin %d",
				tr, curA, nextA, curB, nextB, m)
		}
		if zoneConflict(curA, curB, m) != zoneConflict(tr.Apply(curA), tr.Apply(curB), m) {
			t.Fatalf("zoneConflict not D4-invariant under %+v for %v, %v margin %d", tr, curA, curB, m)
		}

		// Canonicalization is idempotent: the canonical job is its own
		// canonical form (its transform may differ, the fixed point is the job).
		if again, _ := synth.Canonicalize(canon); again != canon {
			t.Fatalf("Canonicalize not idempotent: %+v re-canonicalized to %+v", canon, again)
		}
	})
}
