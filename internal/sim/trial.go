// Trial harness for the evaluation of Sec. VII: repeated executions of a
// bioassay on the same (reused, progressively degrading) biochip.
package sim

import (
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

// TrialConfig describes one trial: a fresh chip, one router, and repeated
// executions of one bioassay until the target number of successes or the
// first abort.
type TrialConfig struct {
	Sim  Config
	Chip chip.Config
	// Executions is the trial's target number of successful executions
	// (Sec. VII-C uses five).
	Executions int
	// Area is the dispensed droplet area (16 for the 4×4 droplets used in
	// the evaluation).
	Area int
	Seed uint64
}

// DefaultTrialConfig mirrors Sec. VII: 60×30 chip, k_max = 1000, five
// executions, 4×4 droplets.
func DefaultTrialConfig(seed uint64) TrialConfig {
	return TrialConfig{
		Sim:        DefaultConfig(),
		Chip:       chip.Default(),
		Executions: 5,
		Area:       16,
		Seed:       seed,
	}
}

// TrialResult aggregates one trial.
type TrialResult struct {
	// Cycles lists the cycle count of every execution run (an aborted
	// execution contributes KMax).
	Cycles []int
	// Successes is the number of completed executions.
	Successes int
	// FirstFailure is the 1-based index of the aborted execution (0 when
	// every execution succeeded).
	FirstFailure int
	// Stalls and Resyntheses sum over all executions.
	Stalls      int
	Resyntheses int
}

// RouterFactory builds a fresh router per trial (routers carry memoized
// state such as the strategy library).
type RouterFactory func() sched.Router

// RunTrial executes the trial: a fresh chip is instantiated from the seed,
// and the bioassay runs repeatedly until cfg.Executions successes or the
// first abort.
func RunTrial(cfg TrialConfig, bench assay.Benchmark, mk RouterFactory) (TrialResult, error) {
	src := randx.New(cfg.Seed)
	c, err := chip.New(cfg.Chip, src.Split("chip"))
	if err != nil {
		return TrialResult{}, err
	}
	a := bench.Build(assay.Layout{W: cfg.Chip.W, H: cfg.Chip.H}, cfg.Area)
	plan, err := route.Compile(a, cfg.Chip.W, cfg.Chip.H)
	if err != nil {
		return TrialResult{}, err
	}
	runner := NewRunner(cfg.Sim, c, mk(), src.Split("sim"))

	var res TrialResult
	for i := 1; res.Successes < cfg.Executions; i++ {
		exec, err := runner.Execute(plan)
		if err != nil {
			return res, err
		}
		res.Cycles = append(res.Cycles, exec.Cycles)
		res.Stalls += exec.Stalls
		res.Resyntheses += exec.Resyntheses
		if exec.Success {
			res.Successes++
			continue
		}
		res.FirstFailure = i
		break
	}
	return res, nil
}
