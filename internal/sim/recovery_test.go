package sim

import (
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/sched"
)

// deadWallChip builds a chip whose column band x ∈ [25, 28] dies almost
// immediately: any route crossing the middle of the chip stalls, forcing
// error recovery (or, for the adaptive router, a detour).
func deadWallChip(t *testing.T, seed uint64) *chip.Chip {
	t.Helper()
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	c, err := chip.New(cfg, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRecoveryDisabledByDefault: the default configuration matches the
// paper's evaluation (no reactive recovery).
func TestRecoveryDisabledByDefault(t *testing.T) {
	if DefaultConfig().Recovery.Enabled {
		t.Error("recovery must be off by default")
	}
	rc := DefaultRecovery()
	if !rc.Enabled || rc.StallThreshold <= 0 || rc.MaxRollbacks <= 0 {
		t.Errorf("DefaultRecovery = %+v", rc)
	}
}

// TestRecoveryCountsStayZeroWhenHealthy: recovery enabled on a healthy chip
// must never trigger.
func TestRecoveryCountsStayZeroWhenHealthy(t *testing.T) {
	c := deadWallChip(t, 1)
	cfg := DefaultConfig()
	cfg.Recovery = DefaultRecovery()
	src := randx.New(2)
	r := NewRunner(cfg, c, sched.NewBaseline(), src)
	exec, err := r.Execute(compile(t, assay.MasterMix, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("healthy execution failed: %+v", exec)
	}
	if exec.Rollbacks != 0 || exec.RedoneOps != 0 {
		t.Errorf("spurious recovery: %+v", exec)
	}
}

// TestRecoveryRetriesStalledOperation: with hard faults forming a roadblock,
// the baseline router stalls; roll-back recovery discards and re-executes
// the affected operations, visible through the Rollbacks/RedoneOps counters.
func TestRecoveryRetriesStalledOperation(t *testing.T) {
	// Clustered faults failing immediately create dead roadblocks for the
	// health-blind baseline.
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	cfg.Faults = degrade.FaultPlan{
		Mode: degrade.FaultClustered, Fraction: 0.3, FailAfterLo: 1, FailAfterHi: 2,
	}
	simCfg := DefaultConfig()
	simCfg.Recovery = DefaultRecovery()
	simCfg.KMax = 600

	triggered := false
	for seed := uint64(0); seed < 8 && !triggered; seed++ {
		src := randx.New(seed)
		c, err := chip.New(cfg, src.Split("chip"))
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(simCfg, c, sched.NewBaseline(), src.Split("sim"))
		exec, err := r.Execute(compile(t, assay.MasterMix, 16))
		if err != nil {
			t.Fatal(err)
		}
		if exec.Rollbacks > 0 {
			triggered = true
			if exec.RedoneOps == 0 {
				t.Error("rollback without redone operations")
			}
		}
	}
	if !triggered {
		t.Error("no rollback triggered across 8 fault-heavy chips")
	}
}

// TestRecoveryRollbackCapRespected: recovery stops after MaxRollbacks.
func TestRecoveryRollbackCapRespected(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	// Saturate the chip with early hard faults: nothing can route.
	cfg.Faults = degrade.FaultPlan{
		Mode: degrade.FaultUniform, Fraction: 0.6, FailAfterLo: 1, FailAfterHi: 2,
	}
	simCfg := DefaultConfig()
	simCfg.Recovery = DefaultRecovery()
	simCfg.Recovery.MaxRollbacks = 2
	simCfg.KMax = 800
	src := randx.New(5)
	c, err := chip.New(cfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(simCfg, c, sched.NewBaseline(), src.Split("sim"))
	exec, err := r.Execute(compile(t, assay.SerialDilution, 16))
	if err != nil {
		t.Fatal(err)
	}
	if exec.Rollbacks > 2 {
		t.Errorf("rollbacks = %d exceeds cap 2", exec.Rollbacks)
	}
}

// TestRecoveryExecutionStillCompletes: after a rollback, the re-executed
// operations can still finish the bioassay when a viable route exists.
func TestRecoveryExecutionStillCompletes(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	cfg.Faults = degrade.FaultPlan{
		Mode: degrade.FaultClustered, Fraction: 0.15, FailAfterLo: 1, FailAfterHi: 30,
	}
	simCfg := DefaultConfig()
	simCfg.Recovery = DefaultRecovery()
	completed := 0
	for seed := uint64(10); seed < 16; seed++ {
		src := randx.New(seed)
		c, err := chip.New(cfg, src.Split("chip"))
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(simCfg, c, sched.NewBaseline(), src.Split("sim"))
		exec, err := r.Execute(compile(t, assay.CovidRAT, 16))
		if err != nil {
			t.Fatal(err)
		}
		if exec.Success {
			completed++
		}
	}
	if completed == 0 {
		t.Error("recovery never salvaged an execution")
	}
}
