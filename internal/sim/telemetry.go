package sim

import "meda/internal/telemetry"

// Simulation telemetry (internal/telemetry default registry), aggregated
// over every Execute call in the process. Counters mirror the per-execution
// fields of Execution; the histograms add the distributions the aggregate
// hides: how long executions run and how many cycles each microfluidic
// operation stays active (activation → done). sim.aborts counts executions
// that ran down the KMax budget — the paper's "droplet stuck at faulty
// microelectrodes" failure mode.
var (
	telExecutions  = telemetry.C("sim.executions")
	telAborts      = telemetry.C("sim.aborts")
	telCycles      = telemetry.C("sim.cycles")
	telStalls      = telemetry.C("sim.stalls")
	telResyntheses = telemetry.C("sim.resyntheses")
	telJobsDone    = telemetry.C("sim.jobs_completed")
	telRollbacks   = telemetry.C("sim.rollbacks")

	telExecCycles = telemetry.H("sim.cycles_per_execution", telemetry.CountBuckets...)
	telMOCycles   = telemetry.H("sim.cycles_per_mo", telemetry.CountBuckets...)

	// Graceful-degradation observations (fault-injection runs).
	// sim.divergences counts planned-vs-observed divergence escalations,
	// sim.degraded_jobs jobs demoted to the final-tier router,
	// sim.mo_deadline_exceeded operations that overran their per-MO
	// deadline, and sim.hazard_violations audit failures (droplets of
	// different operations overlapping, or a droplet leaving the array).
	telDivergences   = telemetry.C("sim.divergences")
	telDegradedJobs  = telemetry.C("sim.degraded_jobs")
	telMODeadline    = telemetry.C("sim.mo_deadline_exceeded")
	telHazardViolate = telemetry.C("sim.hazard_violations")

	// Concurrent-executor observations (Config.Concurrent).
	// sim.deadlocks counts detected wait-for cycles, sim.serialized_ops
	// victim operations forcibly serialized behind their rivals,
	// sim.dispense_deferrals droplet-cycles spent queued at a contended
	// reservoir; sim.concurrent_droplets is the live droplet count each
	// cycle and sim.droplets_per_cycle its distribution over the run.
	telDeadlocks          = telemetry.C("sim.deadlocks")
	telSerializedOps      = telemetry.C("sim.serialized_ops")
	telSpawnDeferrals     = telemetry.C("sim.dispense_deferrals")
	telConcurrentDroplets = telemetry.G("sim.concurrent_droplets")
	telDropletsPerCycle   = telemetry.H("sim.droplets_per_cycle", telemetry.CountBuckets...)
)
