package sim

import "meda/internal/telemetry"

// Simulation telemetry (internal/telemetry default registry), aggregated
// over every Execute call in the process. Counters mirror the per-execution
// fields of Execution; the histograms add the distributions the aggregate
// hides: how long executions run and how many cycles each microfluidic
// operation stays active (activation → done). sim.aborts counts executions
// that ran down the KMax budget — the paper's "droplet stuck at faulty
// microelectrodes" failure mode.
var (
	telExecutions  = telemetry.C("sim.executions")
	telAborts      = telemetry.C("sim.aborts")
	telCycles      = telemetry.C("sim.cycles")
	telStalls      = telemetry.C("sim.stalls")
	telResyntheses = telemetry.C("sim.resyntheses")
	telJobsDone    = telemetry.C("sim.jobs_completed")
	telRollbacks   = telemetry.C("sim.rollbacks")

	telExecCycles = telemetry.H("sim.cycles_per_execution", telemetry.CountBuckets...)
	telMOCycles   = telemetry.H("sim.cycles_per_mo", telemetry.CountBuckets...)
)
