package sim

import (
	"fmt"
	"io"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/fault"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

// FaultTrialConfig drives RunFaultTrials: for every (benchmark, trial) pair
// a bioassay is executed twice on identically seeded chips — once clean,
// once under a randomized fault plan derived from the trial seed — and the
// faulted run is checked for hazard violations, completion, and bounded
// completion-time inflation relative to the clean run.
type FaultTrialConfig struct {
	// Seed derives every trial's chip, simulation, and fault-plan seeds.
	Seed uint64
	// Trials is how many fault plans each benchmark is run under.
	Trials int
	// Rate is the nominal mixed fault rate (fault.Mixed); each trial
	// jitters it uniformly in [0.5, 1.5]× so the sweep covers a band
	// rather than a point.
	Rate float64
	// Kinds selects the injected fault classes.
	Kinds fault.Kinds
	// Benchmarks lists the bioassays to run; nil means the six-assay
	// evaluation suite.
	Benchmarks []assay.Benchmark
	// Area is the dispensed droplet area (16 = 4×4, the paper's default).
	Area int
	// Inflation bounds the faulted run's cycle count at
	// Inflation×clean + Slack; beyond it the trial is a violation.
	Inflation float64
	Slack     int
	// KMax overrides the per-execution cycle budget (0 keeps
	// DefaultConfig's).
	KMax int
	// Concurrent runs both the clean and faulted executions on the
	// concurrent executor, so the inflation bound measures fault cost on
	// top of — not instead of — operation-level parallelism.
	Concurrent bool
	// Router builds a fresh router per run; nil means the full
	// graceful-degradation ladder, NewFallback(NewAdaptive(), NewBaseline()).
	Router func() sched.Router
	// Log, when non-nil, receives a line per trial.
	Log io.Writer
}

// DefaultFaultTrialConfig is the nightly-CI configuration: three trials per
// assay at a 5% mixed rate, all fault kinds, 4×4 droplets.
func DefaultFaultTrialConfig() FaultTrialConfig {
	return FaultTrialConfig{
		Seed:      2021,
		Trials:    3,
		Rate:      0.05,
		Kinds:     fault.AllKinds,
		Area:      16,
		Inflation: 3,
		Slack:     150,
	}
}

// FaultTrialResult is the outcome of one (benchmark, trial) pair.
type FaultTrialResult struct {
	Benchmark assay.Benchmark
	Trial     int
	Plan      fault.Plan
	// Clean and Faulted are the two executions (Clean.Success should
	// always hold on a robust chip; a clean failure is itself a
	// violation — the trial proved nothing).
	Clean, Faulted Execution
	// Violation describes why the trial failed, "" when it passed.
	Violation string
}

// Violations counts failed trials in a result set.
func Violations(results []FaultTrialResult) int {
	n := 0
	for _, r := range results {
		if r.Violation != "" {
			n++
		}
	}
	return n
}

func (c FaultTrialConfig) withDefaults() FaultTrialConfig {
	if c.Trials <= 0 {
		c.Trials = 1
	}
	if c.Benchmarks == nil {
		c.Benchmarks = assay.EvaluationBenchmarks
	}
	if c.Area <= 0 {
		c.Area = 16
	}
	if c.Inflation <= 0 {
		c.Inflation = 3
	}
	if c.Slack <= 0 {
		c.Slack = 150
	}
	if c.Router == nil {
		c.Router = func() sched.Router {
			return sched.NewFallback(sched.NewAdaptive(), sched.NewBaseline())
		}
	}
	return c
}

// trialChipConfig is the near-immortal chip of the scheduler tests: smooth
// wear is suppressed so completion-time inflation isolates the injected
// faults.
func trialChipConfig() chip.Config {
	cfg := chip.Default()
	cfg.Normal.Tau1, cfg.Normal.Tau2 = 0.99, 0.999
	cfg.Normal.C1, cfg.Normal.C2 = 5000, 10000
	return cfg
}

// runOnce executes one compiled bioassay on a freshly seeded chip.
func runOnce(cfg Config, plan *route.Plan, router sched.Router, src *randx.Source) (Execution, error) {
	c, err := chip.New(trialChipConfig(), src.Split("chip"))
	if err != nil {
		return Execution{}, err
	}
	return NewRunner(cfg, c, router, src.Split("sim")).Execute(plan)
}

// RunFaultTrials executes the fault-trial sweep and returns one result per
// (benchmark, trial) pair. Only infrastructure failures (an uncompilable
// benchmark, an invalid plan) return an error; trial violations are reported
// in the results.
func RunFaultTrials(cfg FaultTrialConfig) ([]FaultTrialResult, error) {
	cfg = cfg.withDefaults()
	root := randx.New(cfg.Seed)
	var results []FaultTrialResult
	for _, bench := range cfg.Benchmarks {
		a := bench.Build(assay.Layout{W: 60, H: 30}, cfg.Area)
		plan, err := route.Compile(a, 60, 30)
		if err != nil {
			return nil, fmt.Errorf("sim: compiling %s: %w", bench, err)
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			tsrc := root.Split(bench.String()).SplitN("trial", trial)
			rate := cfg.Rate * tsrc.Uniform(0.5, 1.5)
			fp := fault.Mixed(tsrc.Split("faultseed").Seed(), rate, cfg.Kinds)
			res, err := runFaultTrial(cfg, plan, fp, tsrc)
			if err != nil {
				return nil, fmt.Errorf("sim: %s trial %d: %w", bench, trial, err)
			}
			res.Benchmark = bench
			res.Trial = trial
			results = append(results, res)
			if cfg.Log != nil {
				status := "ok"
				if res.Violation != "" {
					status = "VIOLATION: " + res.Violation
				}
				fmt.Fprintf(cfg.Log, "%-15s trial %d  rate %.3f  clean %4d  faulted %4d  fallbacks %d  %s\n",
					bench, trial, rate, res.Clean.Cycles, res.Faulted.Cycles,
					res.Faulted.DegradedJobs+res.Faulted.Divergences, status)
			}
		}
	}
	return results, nil
}

// runFaultTrial runs the clean/faulted pair for one compiled plan.
func runFaultTrial(cfg FaultTrialConfig, plan *route.Plan, fp fault.Plan, tsrc *randx.Source) (FaultTrialResult, error) {
	simCfg := DefaultConfig()
	if cfg.KMax > 0 {
		simCfg.KMax = cfg.KMax
	}
	simCfg.Concurrent = cfg.Concurrent
	// The clean and faulted runs draw from identically labeled child
	// sources, so they see the same chip constants and motion sampling —
	// the only difference is the fault plan.
	clean, err := runOnce(simCfg, plan, cfg.Router(), tsrc.Split("exec"))
	if err != nil {
		return FaultTrialResult{}, err
	}
	faulted, err := runOnce(simCfg.WithFaults(fp), plan, cfg.Router(), tsrc.Split("exec"))
	if err != nil {
		return FaultTrialResult{}, err
	}
	res := FaultTrialResult{Plan: fp, Clean: clean, Faulted: faulted}
	bound := int(cfg.Inflation*float64(clean.Cycles)) + cfg.Slack
	switch {
	case !clean.Success:
		res.Violation = "clean run failed"
	case faulted.HazardViolations > 0:
		res.Violation = fmt.Sprintf("%d hazard violations", faulted.HazardViolations)
	case !faulted.Success:
		res.Violation = fmt.Sprintf("faulted run aborted after %d cycles", faulted.Cycles)
	case faulted.Cycles > bound:
		res.Violation = fmt.Sprintf("completion inflated %d → %d (bound %d)", clean.Cycles, faulted.Cycles, bound)
	}
	return res, nil
}
