package sim

import (
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

// runDiffPair executes the same plan twice from the same seed — once with the
// sequential oracle (one hazard zone at a time) and once with the concurrent
// executor — with hazard auditing on, and returns both outcomes.
func runDiffPair(t *testing.T, plan *route.Plan, router func() sched.Router, seed uint64, kmax int) (seq, con Execution) {
	t.Helper()
	run := func(concurrent bool) Execution {
		src := randx.New(seed)
		c, err := chip.New(robustChipConfig(), src.Split("chip"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.KMax = kmax
		cfg.CheckHazards = true
		cfg.Concurrent = concurrent
		r := NewRunner(cfg, c, router(), src.Split("sim"))
		exec, err := r.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	return run(false), run(true)
}

// checkDiff asserts the differential properties the concurrent executor must
// preserve against the sequential oracle. The concurrent run must always
// complete hazard-free. When the oracle completes too, the concurrent run
// must complete at least the oracle's jobs (exactly, unless deadlock
// recovery legitimately re-ran some) in no more cycles. Reports whether the
// oracle itself completed — it can wedge on adversarial mixtures (its forced
// activation has no head-on recovery), in which case the concurrent run
// rescuing the workload is the stronger result.
func checkDiff(t *testing.T, name string, seq, con Execution) bool {
	t.Helper()
	if !con.Success {
		t.Fatalf("%s: concurrent executor failed: %+v", name, con)
	}
	if con.HazardViolations != 0 {
		t.Errorf("%s: concurrent executor violated %d hazards", name, con.HazardViolations)
	}
	if seq.HazardViolations != 0 {
		t.Errorf("%s: sequential oracle violated %d hazards", name, seq.HazardViolations)
	}
	if !seq.Success {
		return false
	}
	if con.JobsCompleted < seq.JobsCompleted {
		t.Errorf("%s: concurrent completed %d jobs, sequential %d",
			name, con.JobsCompleted, seq.JobsCompleted)
	}
	if con.RedoneOps == 0 && con.JobsCompleted != seq.JobsCompleted {
		t.Errorf("%s: concurrent completed %d jobs without redone work, sequential %d",
			name, con.JobsCompleted, seq.JobsCompleted)
	}
	if con.Cycles > seq.Cycles {
		t.Errorf("%s: concurrent took %d cycles, sequential %d — concurrency made it slower",
			name, con.Cycles, seq.Cycles)
	}
	return true
}

// TestConcurrentDiffBenchmarks runs every evaluation benchmark through both
// executors and checks the differential properties.
func TestConcurrentDiffBenchmarks(t *testing.T) {
	for _, bench := range assay.EvaluationBenchmarks {
		seq, con := runDiffPair(t, compile(t, bench, 16), func() sched.Router { return sched.NewAdaptive() }, 23, 2000)
		checkDiff(t, bench.String(), seq, con)
		t.Logf("%-16s sequential %4d cycles, concurrent %4d cycles (peak %d droplets, %d deadlocks)",
			bench, seq.Cycles, con.Cycles, con.PeakDroplets, con.Deadlocks)
	}
}

// TestConcurrentDiffRandomAssays runs 50 seeded random Mixture workloads —
// contention-heavy concatenations of 2–3 paper protocols on shifted layouts —
// through both executors. Every one must stay hazard-free and at least as
// fast as the serialized oracle.
func TestConcurrentDiffRandomAssays(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	speedups, rescued := 0, 0
	for seed := uint64(1); seed <= 50; seed++ {
		a := assay.Mixture(seed, assay.Layout{W: 60, H: 30}, 16, 2+int(seed%2))
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		plan, err := route.Compile(a, 60, 30)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		seq, con := runDiffPair(t, plan, func() sched.Router { return sched.NewBaseline() }, seed, 8000)
		if !checkDiff(t, a.Name, seq, con) {
			rescued++
			t.Logf("%s: sequential oracle wedged (%d jobs in %d cycles); concurrent completed in %d",
				a.Name, seq.JobsCompleted, seq.Cycles, con.Cycles)
			continue
		}
		if con.Cycles < seq.Cycles {
			speedups++
		}
	}
	// Concatenated independent protocols are exactly the workloads
	// concurrency should help: most mixtures must finish strictly faster,
	// and the oracle wedging must stay the rare exception.
	if speedups < 25 {
		t.Errorf("concurrent executor was strictly faster on only %d/50 mixtures", speedups)
	}
	if rescued > 5 {
		t.Errorf("sequential oracle wedged on %d/50 mixtures — workload generator too adversarial", rescued)
	}
}
