package sim

import (
	"errors"
	"fmt"
	"testing"

	"meda/internal/assay"
	"meda/internal/sched"
)

// runWithCheckpoints executes a benchmark with a checkpoint hook installed
// and returns the observed checkpoints alongside the execution.
func runWithCheckpoints(t *testing.T, every int, seed uint64, fn func(Checkpoint) error) (Execution, error, []Checkpoint) {
	t.Helper()
	r := newRunner(t, robustChipConfig(), sched.NewAdaptive(), seed)
	var seen []Checkpoint
	r.Cfg.Checkpoint = CheckpointConfig{Every: every, Fn: func(cp Checkpoint) error {
		seen = append(seen, cp)
		if fn != nil {
			return fn(cp)
		}
		return nil
	}}
	exec, err := r.Execute(compile(t, assay.SerialDilution, 16))
	return exec, err, seen
}

// The hook fires on the cadence, observes monotone cycles, and always sees
// the final cycle.
func TestCheckpointCadence(t *testing.T) {
	exec, err, seen := runWithCheckpoints(t, 16, 42, nil)
	if err != nil || !exec.Success {
		t.Fatalf("exec = %+v, err %v", exec, err)
	}
	if len(seen) == 0 {
		t.Fatal("no checkpoints observed")
	}
	last := -1
	for i, cp := range seen {
		if cp.Exec.Cycles <= last {
			t.Fatalf("checkpoint %d: cycle %d not after %d", i, cp.Exec.Cycles, last)
		}
		last = cp.Exec.Cycles
		if i < len(seen)-1 && cp.Exec.Cycles%16 != 0 {
			t.Fatalf("checkpoint %d at cycle %d, want multiples of 16", i, cp.Exec.Cycles)
		}
	}
	if final := seen[len(seen)-1]; final.Exec.Cycles != exec.Cycles {
		t.Fatalf("final checkpoint at cycle %d, execution ended at %d", final.Exec.Cycles, exec.Cycles)
	}
}

// Observation must not perturb: with and without a hook, and across hook
// cadences, the execution is identical — and checkpoint digests replay
// byte-identically for the same seed.
func TestCheckpointsDoNotPerturbExecution(t *testing.T) {
	r := newRunner(t, robustChipConfig(), sched.NewAdaptive(), 42)
	plain, err := r.Execute(compile(t, assay.SerialDilution, 16))
	if err != nil {
		t.Fatal(err)
	}
	digests := func(every int) ([]uint64, Execution) {
		exec, err, seen := runWithCheckpoints(t, every, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]uint64, len(seen))
		for i, cp := range seen {
			ds[i] = cp.Digest()
		}
		return ds, exec
	}
	d16a, exec16 := digests(16)
	d16b, _ := digests(16)
	_, exec4 := digests(4)
	if exec16 != plain || exec4 != plain {
		t.Fatalf("hook perturbed execution:\nplain %+v\n  e16 %+v\n   e4 %+v", plain, exec16, exec4)
	}
	if fmt.Sprint(d16a) != fmt.Sprint(d16b) {
		t.Fatalf("same seed, different digest sequences:\n%v\n%v", d16a, d16b)
	}
}

// A hook error aborts the execution, wrapped in CheckpointAbort with the
// cycle and the original cause intact.
func TestCheckpointAbort(t *testing.T) {
	cause := errors.New("controller going down")
	_, err, seen := runWithCheckpoints(t, 16, 42, func(cp Checkpoint) error {
		if cp.Exec.Cycles >= 32 {
			return cause
		}
		return nil
	})
	if err == nil {
		t.Fatal("hook error did not abort the execution")
	}
	var abort *CheckpointAbort
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want CheckpointAbort", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause not preserved through Unwrap: %v", err)
	}
	if abort.Cycle < 32 {
		t.Fatalf("abort at cycle %d, hook first errored at 32", abort.Cycle)
	}
	if last := seen[len(seen)-1]; last.Exec.Cycles != abort.Cycle {
		t.Fatalf("last checkpoint cycle %d != abort cycle %d", last.Exec.Cycles, abort.Cycle)
	}
}

// Digest distinguishes checkpoints that differ in any folded field.
func TestCheckpointDigestSensitivity(t *testing.T) {
	base := Checkpoint{Exec: Execution{Cycles: 10, JobsCompleted: 2}, HealthHash: 0xabcd, Droplets: 3}
	variants := []Checkpoint{
		{Exec: Execution{Cycles: 11, JobsCompleted: 2}, HealthHash: 0xabcd, Droplets: 3},
		{Exec: Execution{Cycles: 10, JobsCompleted: 3}, HealthHash: 0xabcd, Droplets: 3},
		{Exec: Execution{Cycles: 10, JobsCompleted: 2}, HealthHash: 0xabce, Droplets: 3},
		{Exec: Execution{Cycles: 10, JobsCompleted: 2}, HealthHash: 0xabcd, Droplets: 4},
	}
	d := base.Digest()
	if d != base.Digest() {
		t.Fatal("digest not stable")
	}
	for i, v := range variants {
		if v.Digest() == d {
			t.Errorf("variant %d collides with base", i)
		}
	}
}
