// Package sim is the MEDA biochip simulation environment of Sec. VII
// (Fig. 14): it executes a compiled bioassay on a simulated biochip, cycle
// by cycle, with the hybrid scheduler of Alg. 3 driving droplets via
// router-provided strategies while the biochip degrades underneath them.
//
// Each operational cycle the scheduler (i) activates operations whose
// predecessors finished, fetching strategies from the router, (ii) selects
// the optimal action per droplet, (iii) aggregates the actuation matrix U
// and applies it (wearing the actuated microelectrodes — player ②'s move),
// (iv) samples each droplet's next position from the true degradation-driven
// outcome distribution, and (v) checks merge/split/hold/exit conditions. The
// execution aborts when the cycle budget k_max is exceeded.
//
// Droplets resting on the array (operation outputs awaiting their consumer,
// or droplets detained at a sensing module) are presented to the router as
// blocked regions, so strategies route around them; a droplet that still
// gets blocked triggers an asynchronous re-route, mirroring the paper's
// re-synthesis on state changes.
package sim

import (
	"fmt"
	"io"
	"sort"

	"meda/internal/action"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/fault"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/smg"
	"meda/internal/synth"
	"meda/internal/telemetry"
)

// Config tunes one execution.
type Config struct {
	// KMax is the per-execution cycle budget; exceeding it aborts the
	// bioassay (Sec. VII-C uses 1000).
	KMax int
	// CollisionMargin is the minimum separation, in cells, maintained
	// between droplets of different operations.
	CollisionMargin int
	// ResynthDelay models the latency, in cycles, between detecting a
	// health change (or an obstruction) and the asynchronously
	// re-synthesized strategy becoming available (Alg. 3).
	ResynthDelay int
	// MinResynthInterval rate-limits re-synthesis per job: once a new
	// strategy is installed, further triggers are coalesced for this many
	// cycles.
	MinResynthInterval int
	// Recovery configures reactive roll-back error recovery (Sec. II-C),
	// the technique the paper's proactive approach is contrasted with.
	Recovery RecoveryConfig
	// WearAwareActivation explores the paper's future-work direction of
	// optimizing the runtime order of microfluidic operations: when
	// several operations are ready, the one whose hazard zones are
	// healthiest activates first, deferring work in degraded regions for
	// as long as the dependency graph allows.
	WearAwareActivation bool
	// Faults is the soft-fault injection plan (internal/fault): stuck and
	// transiently failing microelectrodes, sensor misreads, and
	// control-plane faults. The zero plan injects nothing.
	Faults fault.Plan
	// MODeadline is the per-operation cycle budget (activation → done);
	// an operation that overruns it has its unfinished jobs degraded to
	// the router's final tier. Zero disables deadlines.
	MODeadline int
	// DivergenceLimit is how many divergence observations (off-policy
	// positions or physical no-move stalls) a job tolerates before the
	// runner blacklists the failing region and re-routes; at twice the
	// limit the job is degraded to the final-tier router. Zero disables
	// divergence tracking.
	DivergenceLimit int
	// CheckHazards audits droplet state after every cycle's motion:
	// droplets of different operations must never overlap and no droplet
	// may leave the array. Violations are counted, not fatal.
	CheckHazards bool
	// Checkpoint, when its Fn is non-nil, observes the execution every
	// Every cycles (and on the final cycle): the fleet service journals
	// progress, emits streaming events, and aborts cooperatively through
	// it (see checkpoint.go). The hook must not mutate chip or droplet
	// state; it runs on the executor's goroutine, so it never races the
	// simulation.
	Checkpoint CheckpointConfig
	// Concurrent enables the assay-level concurrent executor: every ready
	// operation activates as soon as its goal sites are mutually exclusive
	// (rather than waiting for whole-hazard-zone exclusivity), per-move
	// fluidic constraints keep concurrent droplets apart, reservoir
	// contention is arbitrated by waiting age, and wait-for cycles among
	// stalled droplets trigger deadlock recovery: the victim operation is
	// forcibly serialized behind its rivals. The default (false) keeps the
	// conservative one-zone-at-a-time discipline, which the differential
	// tests use as the oracle.
	Concurrent bool
}

// WithFaults returns the configuration with a fault plan attached and the
// graceful-degradation machinery (per-MO deadlines, divergence tracking,
// hazard auditing) enabled at its defaults where unset.
func (c Config) WithFaults(p fault.Plan) Config {
	c.Faults = p
	if c.MODeadline == 0 {
		c.MODeadline = 350
	}
	if c.DivergenceLimit == 0 {
		c.DivergenceLimit = 24
	}
	c.CheckHazards = true
	return c
}

// RecoveryConfig enables roll-back error recovery: when a droplet makes no
// progress for StallThreshold cycles, the error-recovery controller declares
// the operation failed, discards its droplets, and re-executes the operation
// together with every operation needed to regenerate the lost droplets
// (transitively, down to the dispense reservoirs).
type RecoveryConfig struct {
	Enabled bool
	// StallThreshold is the number of cycles without droplet movement
	// after which an operation is declared failed.
	StallThreshold int
	// MaxRollbacks caps recovery attempts per execution; beyond it the
	// execution runs down the clock (and aborts at KMax).
	MaxRollbacks int
}

// DefaultConfig mirrors the paper's evaluation settings (recovery off — the
// paper's two routers both run without reactive recovery; see Sec. VII-A).
func DefaultConfig() Config {
	return Config{KMax: 1000, CollisionMargin: 1, ResynthDelay: 2, MinResynthInterval: 5}
}

// DefaultRecovery returns the roll-back recovery configuration used by the
// proactive-vs-reactive extension experiment.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{Enabled: true, StallThreshold: 60, MaxRollbacks: 8}
}

// Execution is the outcome of running one bioassay once.
type Execution struct {
	// Success reports whether every operation completed within KMax.
	Success bool
	// Cycles is the number of operational cycles consumed (= KMax when
	// aborted).
	Cycles int
	// Stalls counts droplet-cycles spent holding for lack of a usable
	// action (no strategy, collision blocks, or unroutable region).
	Stalls int
	// Resyntheses counts strategy refreshes triggered by health changes
	// or obstructions.
	Resyntheses int
	// JobsCompleted counts finished routing jobs.
	JobsCompleted int
	// Rollbacks counts reactive error-recovery events (0 unless recovery
	// is enabled); RedoneOps counts the operations re-executed by them.
	Rollbacks int
	RedoneOps int
	// Divergences counts escalations of the planned-vs-observed divergence
	// detector (each escalation blacklists a suspect region and forces a
	// re-route); DegradedJobs counts jobs demoted to the router's final
	// tier, by divergence or MO deadline. Both stay 0 unless the
	// corresponding Config knobs are enabled.
	Divergences  int
	DegradedJobs int
	// HazardViolations counts post-motion audit failures (CheckHazards):
	// droplets of different operations overlapping, or a droplet off the
	// array. Always 0 in a correct execution.
	HazardViolations int
	// Concurrent-executor observations (zero unless Config.Concurrent,
	// except PeakDroplets which is tracked in every mode): Deadlocks counts
	// detected wait-for cycles among stalled droplets, SerializedOps counts
	// victim operations forcibly serialized behind their rivals (rolled
	// back and deferred), and DispenseDeferrals counts droplet-cycles a
	// pending dispense spent waiting its turn at a contended reservoir.
	Deadlocks         int
	SerializedOps     int
	DispenseDeferrals int
	// PeakDroplets is the maximum number of droplets simultaneously on the
	// array at any cycle of the execution.
	PeakDroplets int
}

// CycleHook observes each cycle's actuation patterns (used by the Fig. 3
// correlation study to record per-cell actuation vectors).
type CycleHook func(k int, patterns []geom.Rect)

// Runner executes bioassays on a biochip. The chip's wear persists across
// executions, modeling device reuse (Sec. VII-B).
type Runner struct {
	Cfg    Config
	Chip   *chip.Chip
	Router sched.Router
	Hook   CycleHook
	// Debug, when non-nil, receives a per-droplet state dump every
	// DebugEvery cycles — a development aid for diagnosing schedules.
	Debug      io.Writer
	DebugEvery int
	src        *randx.Source
	// inferredFaults are regions the reactive error-recovery controller
	// has learned to avoid within the current execution: wherever a
	// droplet stalled before a rollback. Health-blind routers cannot
	// sense dead microelectrodes, but they can remember where droplets
	// died — the essence of retrial-with-rerouting recovery. The
	// divergence detector feeds the same list: regions a droplet
	// physically cannot enter are blacklisted whether or not the health
	// sensor agrees.
	inferredFaults []geom.Rect
	// inj is the soft-fault injector built from Cfg.Faults on first
	// Execute; it persists across executions (stuck cells, like wear, do
	// not heal between bioassays).
	inj *fault.Injector
	// cs is the concurrent executor's per-execution state, nil outside an
	// Execute call with Cfg.Concurrent set. Held on the Runner so deferred
	// splits and merges (progress path) can record wait-for edges for
	// deadlock detection.
	cs *concurrentState
}

// NewRunner assembles a simulation environment.
func NewRunner(cfg Config, c *chip.Chip, router sched.Router, src *randx.Source) *Runner {
	return &Runner{Cfg: cfg, Chip: c, Router: router, src: src}
}

type moState int

const (
	moInit moState = iota
	moActive
	moDone
)

// jobRT is the runtime state of one routing job.
type jobRT struct {
	rj     route.RJ
	mo     int
	policy synth.Policy
	hash   uint64 // health hash the current policy was built from
	// re-synthesis bookkeeping.
	pending        bool
	obstacleDirty  bool
	nextTry        int
	blockedStreak  int
	extraObstacles []geom.Rect
	// widen inflates the synthesis window beyond the planned hazard bounds
	// (concurrent mode only): when the goal is unreachable because foreign
	// droplets obstruct the planned corridor, successive re-syntheses search
	// progressively wider windows so the route can detour around them.
	widen    int
	done     bool
	droplet  *dropletRT
	routable bool
	// divergence counts planned-vs-observed mismatch observations since
	// the droplet last moved on-policy; degraded marks the job as demoted
	// to the router's final tier for the rest of the execution.
	divergence int
	degraded   bool
}

// dropletRT is a droplet on the chip.
type dropletRT struct {
	rect geom.Rect
	mo   int    // owning operation (consumer), -1 when resting as an output
	job  *jobRT // active routing job, nil when resting or detained
	// lastMove is the cycle of the droplet's last position change (or its
	// creation), used by reactive error recovery to detect stalls.
	lastMove int
}

// quasiStatic reports whether the droplet will stay put until some other
// operation acts: resting outputs, detained droplets, droplets whose job has
// finished, and droplets parked in their goal region (e.g. awaiting a merge
// partner).
func (d *dropletRT) quasiStatic() bool {
	if d.job == nil || d.job.done {
		return true
	}
	return smg.GoalLabel(d.rect, d.job.rj.Goal)
}

// moRT is the runtime state of one operation.
type moRT struct {
	cm    *route.CompiledMO
	state moState
	phase int
	jobs  []*jobRT
	// activatedAt is the cycle the operation became active; recorded marks
	// that its activation→done cycle count has been observed by telemetry.
	activatedAt int
	recorded    bool
	// prefetched marks that the operation's strategies were handed to a
	// background prefetcher while it waited for its hazard zones.
	prefetched bool
	holdLeft   int  // mag hold countdown (runs once the droplet arrives)
	holding    bool // mag droplet has arrived and is being detained
	// pendingSplit is the droplet awaiting a split (a spt parent or a
	// dilution's merged droplet); the split is deferred until the half
	// positions are clear of foreign droplets. splitWait counts deferred
	// cycles: after a long wait the margin requirement is dropped so two
	// wedged operations cannot starve each other.
	pendingSplit *dropletRT
	splitWait    int
	// mergeWait counts cycles a concurrent-mode coalesce was deferred
	// because a foreign droplet sat inside the merged footprint's margin
	// (the merged rectangle extends past its sources, so materializing it
	// next to a transiting droplet would violate the fluidic constraints).
	mergeWait int
	// degraded marks that the operation overran its per-MO deadline and
	// its jobs were demoted to the final-tier router.
	degraded bool
}

type outputKey struct{ mo, slot int }

// Execute runs the bioassay once. The same Runner may be called repeatedly;
// wear accumulates on the chip between executions.
func (r *Runner) Execute(plan *route.Plan) (Execution, error) {
	sp := telemetry.StartSpan("sim.execute")
	exec, err := r.execute(plan)
	sp.End()
	if err != nil {
		return exec, err
	}
	telExecutions.Inc()
	telCycles.Add(int64(exec.Cycles))
	telStalls.Add(int64(exec.Stalls))
	telResyntheses.Add(int64(exec.Resyntheses))
	telJobsDone.Add(int64(exec.JobsCompleted))
	telRollbacks.Add(int64(exec.Rollbacks))
	telExecCycles.Observe(float64(exec.Cycles))
	if !exec.Success {
		telAborts.Inc()
	}
	return exec, nil
}

// execute is the uninstrumented body of Execute.
func (r *Runner) execute(plan *route.Plan) (Execution, error) {
	if plan.W != r.Chip.W() || plan.H != r.Chip.H() {
		return Execution{}, fmt.Errorf("sim: plan compiled for %d×%d but chip is %d×%d",
			plan.W, plan.H, r.Chip.W(), r.Chip.H())
	}
	if r.Cfg.Faults.Enabled() && r.inj == nil {
		if err := r.Cfg.Faults.Validate(); err != nil {
			return Execution{}, err
		}
		r.inj = fault.New(r.Cfg.Faults, r.Chip.W(), r.Chip.H())
		r.Chip.AttachFaults(r.inj)
		if fa, ok := r.Router.(sched.FaultAware); ok {
			fa.SetFaultInjector(r.inj)
		}
	}
	prefetcher, _ := r.Router.(sched.Prefetcher)
	if prefetcher != nil {
		// No background synthesis may outlive the execution: workers hold
		// health snapshots, and the next execution wears the chip further.
		defer prefetcher.Drain()
	}
	mos := make([]*moRT, len(plan.MOs))
	for i := range plan.MOs {
		cm := &plan.MOs[i]
		m := &moRT{cm: cm}
		for j := range cm.Jobs {
			rj := synth.NormalizeDispense(cm.Jobs[j], plan.W, plan.H)
			m.jobs = append(m.jobs, &jobRT{rj: rj, mo: i, routable: true})
		}
		mos[i] = m
	}
	// consumerOf maps a dispense operation to the operation consuming its
	// droplet, for just-in-time dispensing.
	consumerOf := make([]int, len(plan.MOs))
	for i := range consumerOf {
		consumerOf[i] = -1
	}
	for i := range plan.MOs {
		for _, slot := range plan.MOs[i].InSlots {
			if plan.MOs[slot[0]].MO.Type == assay.Dis {
				consumerOf[slot[0]] = i
			}
		}
	}
	outputs := make(map[outputKey]*dropletRT)
	var droplets []*dropletRT
	var exec Execution
	r.inferredFaults = nil
	// cs is non-nil only in concurrent mode; every branch it gates leaves
	// the default one-zone-at-a-time path bit-for-bit unchanged, so the
	// sequential executor stays a valid differential oracle.
	var cs *concurrentState
	if r.Cfg.Concurrent {
		cs = newConcurrentState(len(mos))
	}
	r.cs = cs
	defer func() { r.cs = nil }()

	removeDroplet := func(d *dropletRT) {
		for i, q := range droplets {
			if q == d {
				droplets = append(droplets[:i], droplets[i+1:]...)
				return
			}
		}
	}

	// ready reports whether an operation's dependencies are met. Dispense
	// operations additionally wait until their consumer's other inputs are
	// done (just-in-time dispensing), so reagent droplets do not sit on
	// the array blocking unrelated routes.
	ready := func(id int) bool {
		m := mos[id]
		if m.state != moInit {
			return false
		}
		for _, pre := range m.cm.MO.Pre {
			if mos[pre].state != moDone {
				return false
			}
		}
		if m.cm.MO.Type != assay.Dis {
			return true
		}
		c := consumerOf[id]
		if c < 0 {
			return true
		}
		for _, pre := range mos[c].cm.MO.Pre {
			if pre == id || mos[pre].state == moDone {
				continue
			}
			if plan.MOs[pre].MO.Type == assay.Dis {
				continue // sibling dispense: jointly ready
			}
			return false
		}
		return true
	}

	// claims returns the resting droplets an operation would pick up on
	// activation.
	claims := func(id int) map[*dropletRT]bool {
		out := map[*dropletRT]bool{}
		for _, slot := range mos[id].cm.InSlots {
			if d, ok := outputs[outputKey{slot[0], slot[1]}]; ok {
				out[d] = true
			}
		}
		return out
	}

	// canReserve implements hazard zones as exclusive resources (their
	// 3-cell safety margin exists "to prevent accidental merging"): a new
	// operation's zones must not overlap any active operation's zones,
	// nor cover a foreign resting droplet. This keeps concurrent routes
	// apart; the collision guard, obstacle-aware re-routing, and
	// sidestepping below handle whatever still meets.
	canReserve := func(id int) bool {
		mine := claims(id)
		for _, j := range mos[id].jobs {
			for oid, om := range mos {
				if oid == id || om.state != moActive {
					continue
				}
				for _, oj := range om.jobs {
					if j.rj.Hazard.Overlaps(oj.rj.Hazard) {
						return false
					}
				}
			}
			for _, d := range droplets {
				if d.mo == -1 && !mine[d] && j.rj.Hazard.Overlaps(d.rect.Expand(r.Cfg.CollisionMargin)) {
					return false
				}
			}
		}
		return true
	}

	lastProgress := 0
	for k := 1; k <= r.Cfg.KMax; k++ {
		exec.Cycles = k

		// 1. Activate ready operations (Alg. 3 init → active) whose
		// hazard zones can be reserved. If the discipline wedges (no
		// active work, or no progress for a long stretch), force the
		// lowest ready operation through and let the per-droplet
		// fallbacks arbitrate.
		var readyIDs []int
		anyActive := false
		for id, m := range mos {
			if m.state == moActive {
				anyActive = true
			}
			if ready(id) && (cs == nil || cs.mayActivate(id, k, mos)) {
				readyIDs = append(readyIDs, id)
			}
		}
		if r.Cfg.WearAwareActivation && len(readyIDs) > 1 {
			sort.SliceStable(readyIDs, func(i, j int) bool {
				return r.zoneHealth(mos[readyIDs[i]]) > r.zoneHealth(mos[readyIDs[j]])
			})
		}
		activated := false
		for _, id := range readyIDs {
			ok := false
			if cs != nil {
				ok = r.canActivateConcurrent(id, mos, droplets, claims(id))
			} else {
				ok = canReserve(id)
			}
			if ok {
				r.activate(mos[id], id, outputs, &droplets, k, &exec)
				activated = true
				anyActive = true
			}
		}
		if !activated && len(readyIDs) > 0 && (!anyActive || k-lastProgress > 100) {
			r.activate(mos[readyIDs[0]], readyIDs[0], outputs, &droplets, k, &exec)
			lastProgress = k
		}

		// 1b. Pre-synthesize strategies for ready operations still waiting
		// on their hazard zones: by the time they activate, the router
		// finds their strategies warm (Alg. 3's synthesis step moved off
		// the critical path while the current operations execute).
		if prefetcher != nil {
			for _, id := range readyIDs {
				m := mos[id]
				if m.state != moInit || m.prefetched {
					continue
				}
				m.prefetched = true
				for _, j := range m.jobs {
					prefetcher.Prefetch(j.rj, r.Chip)
				}
			}
		}

		// 1c. Pending dispenses: spawn when the entry area clears. In
		// concurrent mode a contended reservoir is arbitrated by waiting
		// age (longest-deferred dispense first), so none starves.
		if cs != nil {
			r.arbitrateSpawns(cs, mos, k, &droplets, &exec)
		} else {
			for id, m := range mos {
				if m.state == moActive && m.cm.MO.Type == assay.Dis && m.jobs[0].droplet == nil {
					r.trySpawn(m, id, k, &droplets)
				}
			}
		}
		if n := len(droplets); n > exec.PeakDroplets {
			exec.PeakDroplets = n
		}
		if cs != nil {
			cs.observeCycle(len(droplets))
		}

		// 1d. Per-MO deadlines: an operation running far past activation is
		// degraded — its unfinished jobs are demoted to the router's final
		// tier, trading route quality for guaranteed progress.
		if r.Cfg.MODeadline > 0 {
			for _, m := range mos {
				if m.state != moActive || m.degraded || k-m.activatedAt <= r.Cfg.MODeadline {
					continue
				}
				m.degraded = true
				telMODeadline.Inc()
				for _, j := range m.jobs {
					if j.done || j.degraded {
						continue
					}
					j.degraded = true
					j.obstacleDirty = true
					exec.DegradedJobs++
					telDegradedJobs.Inc()
				}
			}
		}

		// 2. Asynchronous re-synthesis (Alg. 3): refresh strategies whose
		// region's health changed or that ran into an obstruction.
		for _, m := range mos {
			if m.state != moActive {
				continue
			}
			for _, j := range m.jobs {
				if j.done || j.droplet == nil {
					continue
				}
				dirty := j.obstacleDirty
				healthDirty := false
				if r.Router.HealthAware() && j.routable && !dirty {
					healthDirty = r.Chip.HealthHash(j.rj.Hazard) != j.hash
					dirty = healthDirty
				}
				if dirty && !j.pending {
					if healthDirty {
						if inv, ok := r.Router.(sched.RegionInvalidator); ok {
							// The job's region covers the degraded cells
							// that triggered the refresh: evict overlapping
							// strategies eagerly.
							inv.InvalidateRegion(j.rj.Hazard)
						}
					}
					j.pending = true
					if k+r.Cfg.ResynthDelay > j.nextTry {
						j.nextTry = k + r.Cfg.ResynthDelay
					}
				}
				if j.pending && k >= j.nextTry {
					r.install(j, k, droplets, &exec)
				}
			}
		}

		// 3. Select actions and build the actuation matrix U.
		if cs != nil {
			cs.resetWaits()
		}
		patterns := make([]geom.Rect, 0, len(droplets))
		intents := make([]geom.Rect, len(droplets)) // committed region per droplet
		acts := make([]action.Action, len(droplets))
		moving := make([]bool, len(droplets))
		for i, d := range droplets {
			intents[i] = d.rect // default: hold in place
			if d.job == nil || d.job.done {
				patterns = append(patterns, d.rect)
				continue
			}
			if smg.GoalLabel(d.rect, d.job.rj.Goal) {
				// Arrived; wait for the operation-level condition
				// (merge rendezvous, phase change) to pick it up.
				patterns = append(patterns, d.rect)
				continue
			}
			a, ok := d.job.policy[d.rect]
			if !ok {
				// Off-policy position or unroutable region: keep
				// probing for a way out as health/obstacles evolve.
				exec.Stalls++
				d.job.obstacleDirty = true
				r.noteDivergence(d, &exec)
				if cs != nil {
					if b := unroutableBlocker(d, droplets); b != nil {
						cs.waits[d] = b
					}
				}
				patterns = append(patterns, d.rect)
				continue
			}
			target := a.Apply(d.rect)
			if blocker := r.blockedBy(d, target, droplets, intents, i); blocker != nil {
				exec.Stalls++
				d.job.blockedStreak++
				if cs != nil {
					cs.waits[d] = blocker
				}
				if blocker.quasiStatic() {
					d.job.obstacleDirty = true
				} else if d.job.blockedStreak >= blockedStreakLimit {
					// Two moving droplets wedged head-on: re-route
					// around the other one as if it were parked.
					d.job.obstacleDirty = true
					d.job.extraObstacles = append(d.job.extraObstacles,
						blocker.rect.Expand(r.Cfg.CollisionMargin))
				}
				if d.job.blockedStreak >= 2*blockedStreakLimit {
					// Re-routing has not helped; physically sidestep
					// to dissolve multi-droplet knots.
					if alt, nt, ok2 := r.sidestep(d, droplets, intents, i); ok2 {
						intents[i] = nt.Union(d.rect)
						acts[i] = alt
						moving[i] = true
						patterns = append(patterns, nt)
						continue
					}
				}
				patterns = append(patterns, d.rect)
				continue
			}
			d.job.blockedStreak = 0
			intents[i] = target.Union(d.rect)
			acts[i] = a
			moving[i] = true
			patterns = append(patterns, target)
		}

		// 4. Apply U: wear the actuated microelectrodes (player ②).
		r.Chip.Actuate(patterns...)
		if r.Hook != nil {
			r.Hook(k, patterns)
		}

		// 5. Sample droplet motion from the true outcome distributions.
		dropletsBefore := len(droplets)
		for i, d := range droplets {
			if !moving[i] {
				continue
			}
			outs := action.Outcomes(d.rect, acts[i], r.Chip.TrueForceField())
			weights := make([]float64, len(outs))
			for oi, o := range outs {
				weights[oi] = o.P
			}
			next := outs[r.src.Choose(weights)].Droplet
			if next != d.rect {
				lastProgress = k
				d.lastMove = k
				if d.job != nil {
					d.job.divergence = 0
				}
			} else {
				// The chip was commanded to move the droplet and it stayed
				// put — physical divergence from the plan (a stuck-off
				// region produces exactly this signature).
				r.noteDivergence(d, &exec)
			}
			d.rect = next
		}

		// 5b. Hazard audit: after this cycle's motion no droplet may sit
		// off-array and no two droplets of different operations may
		// overlap (accidental merging — the violation the 3-cell hazard
		// margin exists to prevent).
		if r.Cfg.CheckHazards {
			exec.HazardViolations += r.auditHazards(droplets)
		}

		// 6. Completion checks: job arrivals, merges, holds, exits.
		prevJobs := exec.JobsCompleted
		for id, m := range mos {
			if m.state != moActive {
				continue
			}
			r.progress(m, id, outputs, &droplets, removeDroplet, &exec)
		}
		if exec.JobsCompleted > prevJobs || len(droplets) != dropletsBefore {
			lastProgress = k
		}

		// 6a. Concurrent-mode deadlock detection and recovery: wait-for
		// cycles among droplets stalled past patience are broken by forcibly
		// serializing a victim operation behind its rivals.
		if cs != nil && r.detectDeadlocks(cs, mos, plan, outputs, &droplets, k, &exec) {
			lastProgress = k
		}

		// 6b. Reactive error recovery (when enabled), in the paper's two
		// tiers (Sec. II-C). Retrial: a droplet stalled for half the
		// threshold has its suspected dead region blacklisted and its
		// route re-planned. Roll-back: a droplet still stuck at the full
		// threshold fails its operation; the operation and everything
		// needed to regenerate its droplets are re-executed.
		if r.Cfg.Recovery.Enabled {
			failed := -1
			for id, m := range mos {
				if m.state != moActive {
					continue
				}
				for _, j := range m.jobs {
					d := j.droplet
					if d == nil || j.done || d.job == nil {
						continue
					}
					if smg.GoalLabel(d.rect, j.rj.Goal) {
						continue
					}
					stalled := k - d.lastMove
					if stalled > r.Cfg.Recovery.StallThreshold {
						if failed < 0 && exec.Rollbacks < r.Cfg.Recovery.MaxRollbacks {
							failed = id
						}
						continue
					}
					if stalled > r.Cfg.Recovery.StallThreshold/2 && j.routable {
						// Retrial: blacklist the unreachable next step
						// and re-route this job around it.
						if a, ok := j.policy[d.rect]; ok {
							if r.inferFault(a.Apply(d.rect)) {
								j.obstacleDirty = true
							}
						}
					}
				}
			}
			if failed >= 0 {
				r.inferFaults(mos[failed], k)
				rollback(mos, plan, failed, outputs, &droplets, &exec)
				exec.Rollbacks++
				lastProgress = k
			}
		}

		if r.Debug != nil && r.DebugEvery > 0 && k%r.DebugEvery == 0 {
			r.dump(k, mos, droplets)
		}

		// 6c. Per-MO telemetry: observe each operation's activation→done
		// cycle count the cycle it completes.
		for _, m := range mos {
			if m.state == moDone && !m.recorded {
				m.recorded = true
				telMOCycles.Observe(float64(k - m.activatedAt))
			}
		}

		// 7. Finished?
		allDone := true
		for _, m := range mos {
			if m.state != moDone {
				allDone = false
				break
			}
		}
		if allDone {
			exec.Success = true
			if err := r.checkpoint(k, &exec, len(droplets), true); err != nil {
				return exec, err
			}
			return exec, nil
		}

		// 7b. Periodic checkpoint: observe progress and honor cooperative
		// aborts (cancellation, controller shutdown). Placed after the
		// completion check so a finished execution is never aborted on its
		// final cycle.
		if err := r.checkpoint(k, &exec, len(droplets), false); err != nil {
			return exec, err
		}
	}
	if err := r.checkpoint(r.Cfg.KMax, &exec, len(droplets), true); err != nil {
		return exec, err
	}
	return exec, nil
}

// dump writes a state snapshot for debugging.
func (r *Runner) dump(k int, mos []*moRT, droplets []*dropletRT) {
	fmt.Fprintf(r.Debug, "--- k=%d\n", k)
	for id, m := range mos {
		if m.state == moActive {
			fmt.Fprintf(r.Debug, "  M%d %s active phase=%d holding=%v\n", id, m.cm.MO.Type, m.phase, m.holding)
			for _, j := range m.jobs {
				var rect interface{} = "nil"
				if j.droplet != nil {
					rect = j.droplet.rect
				}
				fmt.Fprintf(r.Debug, "    %s done=%v routable=%v policy=%d droplet=%v goal=%v streak=%d\n",
					j.rj.Name(), j.done, j.routable, len(j.policy), rect, j.rj.Goal, j.blockedStreak)
			}
		}
	}
	for _, d := range droplets {
		fmt.Fprintf(r.Debug, "  droplet mo=%d rect=%v static=%v\n", d.mo, d.rect, d.quasiStatic())
	}
}

// obstaclesFor returns the margin-expanded rectangles of quasi-static
// droplets foreign to the given operation — the regions a new strategy must
// route around — plus any fault regions the reactive recovery controller has
// inferred from earlier stalls.
func (r *Runner) obstaclesFor(moID int, droplets []*dropletRT) []geom.Rect {
	var out []geom.Rect
	for _, d := range droplets {
		if d.mo == moID {
			continue
		}
		if d.quasiStatic() {
			out = append(out, d.rect.Expand(r.Cfg.CollisionMargin))
		}
	}
	out = append(out, r.inferredFaults...)
	return out
}

// noteDivergence records one planned-vs-observed mismatch for the droplet's
// job. Every DivergenceLimit observations the runner escalates: the step the
// plan keeps failing on is blacklisted (feeding obstaclesFor, like the
// reactive-recovery retrial tier) and the job re-routes; at twice the limit
// the job is degraded to the router's final tier — the bottom rung of the
// graceful-degradation ladder.
func (r *Runner) noteDivergence(d *dropletRT, exec *Execution) {
	lim := r.Cfg.DivergenceLimit
	j := d.job
	if lim <= 0 || j == nil || j.done {
		return
	}
	j.divergence++
	if j.divergence%lim != 0 {
		return
	}
	exec.Divergences++
	telDivergences.Inc()
	if a, ok := j.policy[d.rect]; ok {
		// The plan keeps commanding this step and the droplet keeps not
		// arriving: treat the target region as physically suspect whether
		// or not the health sensor agrees (it may be lying).
		r.inferFault(a.Apply(d.rect))
	}
	j.obstacleDirty = true
	if j.divergence >= 2*lim && !j.degraded {
		j.degraded = true
		exec.DegradedJobs++
		telDegradedJobs.Inc()
	}
}

// auditHazards counts fluidic-safety violations in the current droplet
// state: droplets (partially) off the array, and droplets of different
// operations overlapping. Droplets of the same operation are exempt — mix
// rendezvous intentionally brings them together.
func (r *Runner) auditHazards(droplets []*dropletRT) int {
	violations := 0
	bounds := r.Chip.Bounds()
	for i, d := range droplets {
		if !bounds.ContainsRect(d.rect) {
			violations++
			telHazardViolate.Inc()
			if r.Debug != nil {
				fmt.Fprintf(r.Debug, "hazard: droplet mo=%d at %v off-array\n", d.mo, d.rect)
			}
		}
		for _, q := range droplets[i+1:] {
			if d.mo >= 0 && d.mo == q.mo {
				continue
			}
			if d.rect.Overlaps(q.rect) {
				violations++
				telHazardViolate.Inc()
				if r.Debug != nil {
					fmt.Fprintf(r.Debug, "hazard: droplets mo=%d at %v and mo=%d at %v overlap\n",
						d.mo, d.rect, q.mo, q.rect)
				}
			}
		}
	}
	return violations
}

// inferFault records a suspected dead region, deduplicating; it reports
// whether the region is new.
func (r *Runner) inferFault(region geom.Rect) bool {
	for _, f := range r.inferredFaults {
		if f == region {
			return false
		}
	}
	r.inferredFaults = append(r.inferredFaults, region)
	return true
}

// inferFaults records, for every stalled droplet of a failed operation, the
// region it could not enter (its next strategy step), so retried routes
// steer around the suspected dead microelectrodes.
func (r *Runner) inferFaults(m *moRT, k int) {
	for _, j := range m.jobs {
		d := j.droplet
		if d == nil || j.done || d.job == nil {
			continue
		}
		if k-d.lastMove <= r.Cfg.Recovery.StallThreshold {
			continue
		}
		if a, ok := j.policy[d.rect]; ok {
			r.inferFault(a.Apply(d.rect))
		} else {
			// No usable action at all: blacklist the spot itself so the
			// retry approaches the goal from elsewhere.
			r.inferFault(d.rect)
		}
	}
}

// activate transitions an operation from init to active: claims input
// droplets, spawns/splits as needed, and fetches phase-0 strategies.
func (r *Runner) activate(m *moRT, id int, outputs map[outputKey]*dropletRT, droplets *[]*dropletRT, k int, exec *Execution) {
	m.state = moActive
	m.activatedAt = k
	cm := m.cm
	claim := func(j int) *dropletRT {
		key := outputKey{cm.InSlots[j][0], cm.InSlots[j][1]}
		d := outputs[key]
		delete(outputs, key)
		if d != nil {
			d.lastMove = k
		}
		return d
	}
	switch cm.MO.Type {
	case assay.Dis:
		// Droplet spawns in step 1b once the entry area is clear.
		r.fetch(m.jobs[0], k, *droplets, exec)

	case assay.Out, assay.Dsc, assay.Mag:
		d := claim(0)
		d.mo = id
		d.job = m.jobs[0]
		m.jobs[0].droplet = d
		r.fetch(m.jobs[0], k, *droplets, exec)

	case assay.Mix, assay.Dlt:
		// Phase 0: the two inputs route to the mix site.
		for j := 0; j < 2; j++ {
			d := claim(j)
			d.mo = id
			d.job = m.jobs[j]
			m.jobs[j].droplet = d
			r.fetch(m.jobs[j], k, *droplets, exec)
		}

	case assay.Spt:
		// The parent holds in place until the split area is clear
		// (progress() retries the split each cycle).
		parent := claim(0)
		parent.mo = id
		parent.job = nil
		m.pendingSplit = parent
	}
}

// trySplit replaces a pending parent/merged droplet with its two halves at
// the jobs' start rectangles, provided no foreign droplet is within the
// collision margin of the split area. Returns true when the split happened.
func (r *Runner) trySplit(m *moRT, id, jlo, k int, droplets *[]*dropletRT, exec *Execution) bool {
	s0 := m.jobs[jlo].rj.Start
	s1 := m.jobs[jlo+1].rj.Start
	margin := r.Cfg.CollisionMargin
	if m.splitWait > 50 {
		margin = 0 // wedged against an adjacent droplet: split anyway
	}
	zone := s0.Union(s1).Expand(margin)
	var blocker *dropletRT
	for _, d := range *droplets {
		if d == m.pendingSplit || d.mo == id {
			continue
		}
		if zone.Overlaps(d.rect) {
			if blocker == nil || (!blocker.quasiStatic() && d.quasiStatic()) {
				blocker = d
			}
		}
	}
	if blocker != nil {
		m.splitWait++
		if r.cs != nil && m.splitWait > 60 {
			// Still wedged past the margin-0 fallback: the pending parent
			// waits on whatever blocks its split area. Two adjacent pending
			// splits can block each other's areas even at margin 0, a
			// wait-for cycle only deadlock recovery resolves.
			r.cs.waits[m.pendingSplit] = blocker
		}
		if r.Debug != nil && m.splitWait%25 == 0 {
			fmt.Fprintf(r.Debug, "split M%d deferred %d cycles: zone=%v blocked by mo=%d at %v\n",
				id, m.splitWait, zone, blocker.mo, blocker.rect)
		}
		return false
	}
	removeFrom(droplets, m.pendingSplit)
	m.pendingSplit = nil
	m.splitWait = 0
	for j := jlo; j < jlo+2; j++ {
		half := &dropletRT{rect: m.jobs[j].rj.Start, mo: id, job: m.jobs[j], lastMove: k}
		m.jobs[j].droplet = half
		*droplets = append(*droplets, half)
		r.fetch(m.jobs[j], k, *droplets, exec)
	}
	return true
}

// trySpawn places a dispense droplet at its entry rectangle when the area is
// clear of other droplets.
func (r *Runner) trySpawn(m *moRT, id, k int, droplets *[]*dropletRT) {
	j := m.jobs[0]
	entry := j.rj.Start.Expand(r.Cfg.CollisionMargin)
	for _, d := range *droplets {
		if entry.Overlaps(d.rect) {
			return
		}
	}
	d := &dropletRT{rect: j.rj.Start, mo: id, job: j, lastMove: k}
	j.droplet = d
	*droplets = append(*droplets, d)
}

// blockedStreakLimit is how many consecutive blocked cycles a droplet
// tolerates before treating a moving blocker as an obstacle to route around;
// at twice the limit it starts sidestepping physically.
const blockedStreakLimit = 4

// sidestep picks an alternative single/ordinal move for a wedged droplet:
// the unblocked in-bounds move whose destination is closest to the goal
// (which may temporarily increase the distance). Returns ok=false when every
// direction is blocked.
func (r *Runner) sidestep(d *dropletRT, droplets []*dropletRT, intents []geom.Rect, i int) (action.Action, geom.Rect, bool) {
	type cand struct {
		a    action.Action
		t    geom.Rect
		dist float64
	}
	gx, gy := d.job.rj.Goal.Center()
	var best *cand
	for _, a := range action.All() {
		switch a.Class() {
		case action.Cardinal, action.Ordinal:
		default:
			continue
		}
		t := a.Apply(d.rect)
		if !d.job.rj.Hazard.ContainsRect(t) {
			continue
		}
		if r.blockedBy(d, t, droplets, intents, i) != nil {
			continue
		}
		cx, cy := t.Center()
		c := cand{a: a, t: t, dist: abs(cx-gx) + abs(cy-gy)}
		if best == nil || c.dist < best.dist {
			cc := c
			best = &cc
		}
	}
	if best == nil {
		return 0, geom.Rect{}, false
	}
	return best.a, best.t, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// fetch obtains a job's strategy from the router, routing around the
// current quasi-static droplets (and any droplets the job was recently
// wedged against).
func (r *Runner) fetch(j *jobRT, k int, droplets []*dropletRT, exec *Execution) {
	obstacles := append(r.obstaclesFor(j.mo, droplets), j.extraObstacles...)
	rj := j.rj
	if j.droplet != nil {
		// Strategies are re-synthesized from wherever the droplet is
		// now; the current position is exempt from obstacle pruning so
		// the droplet can always step out of a freshly blocked margin.
		rj.Start = j.droplet.rect
		rj.Dispense = false
	}
	if j.widen > 0 {
		b := r.Chip.Bounds()
		rj.Hazard = rj.Hazard.Expand(j.widen).Clamp(b.Width(), b.Height())
	}
	var policy synth.Policy
	var err error
	if dr, ok := r.Router.(sched.DegradedRouter); ok && j.degraded {
		// A degraded job skips the primary router entirely: its model has
		// repeatedly failed to predict this droplet's motion.
		policy, _, err = dr.RouteDegraded(rj, r.Chip, obstacles)
	} else {
		policy, _, err = r.Router.Route(rj, r.Chip, obstacles)
	}
	j.hash = r.Chip.HealthHash(j.rj.Hazard)
	j.nextTry = k + r.Cfg.MinResynthInterval
	j.pending = false
	j.obstacleDirty = false
	j.extraObstacles = nil
	j.blockedStreak = 0
	if r.Debug != nil && (err != nil || len(policy) == 0) {
		fmt.Fprintf(r.Debug, "fetch %s at k=%d: err=%v policy=%d obstacles=%v start=%v\n",
			j.rj.Name(), k, err, len(policy), obstacles, rj.Start)
	}
	if err != nil || len(policy) == 0 {
		// No strategy exists (e.g. dead or fully obstructed region): the
		// droplet holds; re-routes keep probing as conditions change,
		// and the execution runs down the clock if none appears —
		// matching the paper's "droplet stuck at faulty
		// microelectrodes" failure mode. In concurrent mode an
		// obstruction by foreign droplets additionally widens the next
		// synthesis window, so head-on meetings in open space dissolve
		// by detouring instead of wedging until deadlock recovery.
		if r.Cfg.Concurrent && len(obstacles) > 0 && j.widen < widenMax {
			j.widen += widenStep
		}
		j.policy = nil
		j.routable = false
		return
	}
	j.policy = policy
	j.routable = true
}

// install performs a delayed re-synthesis against current health and
// obstacles.
func (r *Runner) install(j *jobRT, k int, droplets []*dropletRT, exec *Execution) {
	r.fetch(j, k, droplets, exec)
	exec.Resyntheses++
}

// blockedBy returns a droplet of another operation that the intended move
// would violate the fluidic constraints with, or nil when the move is clear.
// The incremental per-cycle form of the static/dynamic envelope (see
// HazardFree): a droplet's next position is checked against the cur∪next
// region of every droplet already committed this cycle (static + dynamic
// halves at once) and against the current position of every droplet yet to
// move (the dynamic half; the mover's own half is checked when its turn
// comes).
func (r *Runner) blockedBy(d *dropletRT, target geom.Rect, droplets []*dropletRT, intents []geom.Rect, i int) *dropletRT {
	// Only the destination is margin-checked: a droplet that finds itself
	// within an obstacle's margin (e.g. a merge product appeared next to
	// it) must still be able to step away.
	for q, other := range droplets {
		if q == i || other.mo == d.mo {
			continue
		}
		// Compare against the other droplet's committed region (earlier
		// droplets this cycle) or current position (later ones).
		region := other.rect
		if q < i {
			region = region.Union(intents[q])
		}
		if zoneConflict(target, region, r.Cfg.CollisionMargin) {
			return other
		}
	}
	return nil
}

func removeFrom(droplets *[]*dropletRT, d *dropletRT) {
	for i, q := range *droplets {
		if q == d {
			*droplets = append((*droplets)[:i], (*droplets)[i+1:]...)
			return
		}
	}
}

// progress advances an active operation after this cycle's movement:
// arrivals, merges, holds, splits, exits, and the done transition.
func (r *Runner) progress(m *moRT, id int, outputs map[outputKey]*dropletRT,
	droplets *[]*dropletRT, remove func(*dropletRT), exec *Execution) {
	cm := m.cm
	arrived := func(j *jobRT) bool {
		return j.droplet != nil && smg.GoalLabel(j.droplet.rect, j.rj.Goal)
	}
	finishJob := func(j *jobRT) {
		if !j.done {
			j.done = true
			exec.JobsCompleted++
		}
	}
	rest := func(d *dropletRT, slot int) {
		d.job = nil
		d.mo = -1
		outputs[outputKey{id, slot}] = d
	}

	switch cm.MO.Type {
	case assay.Dis:
		j := m.jobs[0]
		if arrived(j) {
			finishJob(j)
			rest(j.droplet, 0)
			m.state = moDone
		}

	case assay.Out, assay.Dsc:
		j := m.jobs[0]
		if arrived(j) {
			finishJob(j)
			remove(j.droplet)
			m.state = moDone
		}

	case assay.Mag:
		j := m.jobs[0]
		if !m.holding && arrived(j) {
			finishJob(j)
			m.holding = true
			m.holdLeft = cm.MO.Hold
			j.droplet.job = nil // detained: holds in place, still actuated
		}
		if m.holding {
			m.holdLeft--
			if m.holdLeft <= 0 {
				rest(j.droplet, 0)
				m.state = moDone
			}
		}

	case assay.Mix:
		r.progressMerge(m, id, outputs, droplets, remove, exec, false)

	case assay.Spt:
		if m.pendingSplit != nil {
			r.trySplit(m, id, 0, exec.Cycles, droplets, exec)
			return
		}
		j0, j1 := m.jobs[0], m.jobs[1]
		if arrived(j0) {
			finishJob(j0)
			j0.droplet.job = nil
		}
		if arrived(j1) {
			finishJob(j1)
			j1.droplet.job = nil
		}
		if j0.done && j1.done {
			rest(j0.droplet, 0)
			rest(j1.droplet, 1)
			m.state = moDone
		}

	case assay.Dlt:
		if m.phase == 0 {
			r.progressMerge(m, id, outputs, droplets, remove, exec, true)
			if m.pendingSplit != nil && r.trySplit(m, id, 2, exec.Cycles, droplets, exec) {
				m.phase = 1
			}
			return
		}
		j2, j3 := m.jobs[2], m.jobs[3]
		if arrived(j2) {
			finishJob(j2)
			j2.droplet.job = nil
		}
		if arrived(j3) {
			finishJob(j3)
			j3.droplet.job = nil
		}
		if j2.done && j3.done {
			rest(j2.droplet, 0)
			rest(j3.droplet, 1)
			m.state = moDone
		}
	}
}

// progressMerge handles the rendezvous of a mix (or a dilution's mix phase):
// once one input droplet sits in the shared goal region and the other is
// adjacent, the two coalesce into the merged droplet. For dilutions the
// merged droplet immediately splits and phase 1 begins.
func (r *Runner) progressMerge(m *moRT, id int, outputs map[outputKey]*dropletRT,
	droplets *[]*dropletRT, remove func(*dropletRT), exec *Execution, isDlt bool) {
	j0, j1 := m.jobs[0], m.jobs[1]
	if m.pendingSplit != nil || (j0.done && j1.done) {
		return // already coalesced; the split (if any) is pending
	}
	d0, d1 := j0.droplet, j1.droplet
	if d0 == nil || d1 == nil {
		return
	}
	in0 := smg.GoalLabel(d0.rect, j0.rj.Goal)
	in1 := smg.GoalLabel(d1.rect, j1.rj.Goal)
	adjacent := d0.rect.Expand(1).Overlaps(d1.rect)
	if !(adjacent && (in0 || in1)) {
		return
	}
	if r.Cfg.Concurrent {
		// The merged rectangle extends past the two source droplets; with
		// foreign droplets routing nearby (impossible under the sequential
		// zone discipline), defer the coalesce until its footprint is clear,
		// mirroring trySplit. After a long wait only true overlap blocks, so
		// two wedged operations cannot starve each other; the sources hold
		// quasi-statically meanwhile, so passers-by route around them.
		margin := r.Cfg.CollisionMargin
		if m.mergeWait > 50 {
			margin = 0
		}
		zone := m.cm.MergedRect.Expand(margin)
		var blocker *dropletRT
		for _, d := range *droplets {
			if d.mo == id {
				continue
			}
			if zone.Overlaps(d.rect) {
				if blocker == nil || (!blocker.quasiStatic() && d.quasiStatic()) {
					blocker = d
				}
			}
		}
		if blocker != nil {
			m.mergeWait++
			if m.mergeWait > 60 {
				// Still wedged past the margin-0 fallback: both parked
				// sources wait on the intruder, so a permanent squatter in
				// the footprint surfaces as a wait-for chain.
				r.cs.waits[d0] = blocker
				r.cs.waits[d1] = blocker
			}
			return
		}
		m.mergeWait = 0
	}
	// Coalesce.
	if !j0.done {
		j0.done = true
		exec.JobsCompleted++
	}
	if !j1.done {
		j1.done = true
		exec.JobsCompleted++
	}
	remove(d0)
	remove(d1)
	merged := &dropletRT{rect: m.cm.MergedRect, mo: id, lastMove: exec.Cycles}
	*droplets = append(*droplets, merged)
	if !isDlt {
		merged.job = nil
		merged.mo = -1
		outputs[outputKey{id, 0}] = merged
		m.state = moDone
		return
	}
	// Dilution: the merged droplet splits (possibly after waiting for the
	// split area to clear) and phase 1 begins.
	m.pendingSplit = merged
}

// rollback implements roll-back error recovery: discard the failed
// operation's droplets and reset every operation needed to regenerate them —
// the transitive closure of (a) producers of a reset operation's inputs and
// (b) consumers of a reset operation's outputs — back to the init state.
// Chip wear is NOT undone: recovery costs extra actuations, which is exactly
// the paper's argument for proactive avoidance. Callers count the event
// (exec.Rollbacks for reactive recovery, exec.SerializedOps for concurrent
// deadlock serialization).
func rollbackClosure(plan *route.Plan, n, failed int) []bool {
	inR := make([]bool, n)
	inR[failed] = true
	for changed := true; changed; {
		changed = false
		for id := 0; id < n; id++ {
			if !inR[id] {
				continue
			}
			for _, slot := range plan.MOs[id].InSlots {
				if !inR[slot[0]] {
					inR[slot[0]] = true
					changed = true
				}
			}
		}
		for id := 0; id < n; id++ {
			if inR[id] {
				continue
			}
			for _, slot := range plan.MOs[id].InSlots {
				if inR[slot[0]] {
					inR[id] = true
					changed = true
					break
				}
			}
		}
	}
	return inR
}

// rollbackCost is the number of already-started operations a rollback of the
// given operation would reset — the work deadlock recovery should minimize
// when choosing its victim.
func rollbackCost(mos []*moRT, plan *route.Plan, failed int) int {
	cost := 0
	for id, in := range rollbackClosure(plan, len(mos), failed) {
		if in && mos[id].state != moInit {
			cost++
		}
	}
	return cost
}

func rollback(mos []*moRT, plan *route.Plan, failed int, outputs map[outputKey]*dropletRT,
	droplets *[]*dropletRT, exec *Execution) {
	inR := rollbackClosure(plan, len(mos), failed)
	// Discard on-chip droplets owned by reset operations.
	var keep []*dropletRT
	for _, d := range *droplets {
		if d.mo >= 0 && inR[d.mo] {
			continue
		}
		keep = append(keep, d)
	}
	// Discard resting outputs produced by reset operations.
	for key, d := range outputs {
		if inR[key.mo] {
			delete(outputs, key)
			for i, q := range keep {
				if q == d {
					keep = append(keep[:i], keep[i+1:]...)
					break
				}
			}
		}
	}
	*droplets = keep
	// Reset runtime state of every operation in the closure.
	for id := range mos {
		if !inR[id] {
			continue
		}
		if mos[id].state != moInit {
			exec.RedoneOps++
		}
		cm := &plan.MOs[id]
		nm := &moRT{cm: cm}
		for j := range cm.Jobs {
			rj := synth.NormalizeDispense(cm.Jobs[j], plan.W, plan.H)
			nm.jobs = append(nm.jobs, &jobRT{rj: rj, mo: id, routable: true})
		}
		mos[id] = nm
	}
}

// zoneHealth returns the mean observed health (in units of the top code)
// over an operation's hazard zones, used by wear-aware activation ordering.
func (r *Runner) zoneHealth(m *moRT) float64 {
	top := float64(int(1)<<uint(r.Chip.HealthBits()) - 1)
	total, cells := 0.0, 0
	for _, j := range m.jobs {
		h := j.rj.Hazard
		for y := h.YA; y <= h.YB; y++ {
			for x := h.XA; x <= h.XB; x++ {
				total += float64(r.Chip.Health(x, y))
				cells++
			}
		}
	}
	if cells == 0 {
		return 1
	}
	return total / (float64(cells) * top)
}
