// Concurrent assay execution. The default executor treats every operation's
// hazard zones as exclusive resources (canReserve in sim.go): two operations
// whose zones overlap never run at the same time, which is safe but
// serializes most of a contended assay. The concurrent executor keeps every
// ready operation running at once and moves the safety argument down a
// level: activation only requires goal-site exclusivity, the per-move
// fluidic constraints (constraint.go) keep concurrent droplets separated
// cycle by cycle, reservoir contention is arbitrated by waiting age, and the
// residual failure mode — droplets wedged in a wait-for cycle none of the
// per-droplet escapes (re-route, sidestep) can dissolve — is detected on the
// wait-for graph and recovered by forced serialization: the victim operation
// is rolled back and deferred behind its rivals, exactly as if the scheduler
// had never overlapped them.
package sim

import (
	"fmt"
	"sort"

	"meda/internal/assay"
	"meda/internal/route"
)

const (
	// deadlockPatience is the stall age (cycles since the droplet last
	// moved) before a droplet may be declared part of a deadlock —
	// comfortably past the re-route (blockedStreakLimit) and sidestep (2×)
	// escalations, so the cheap per-droplet escapes get their chance first.
	deadlockPatience = 12
	// chainPatience is the longer stall age at which a droplet wedged
	// behind a quasi-static droplet, with no route around it, is serialized
	// even without a wait-for cycle.
	chainPatience = 3 * deadlockPatience
	// serializeDefer is the timed deferral window of a serialized victim:
	// it may not re-activate until its rivals finish or the window expires.
	serializeDefer = 150
	// widenStep/widenMax bound the adaptive synthesis-window inflation of
	// jobs whose goal is unreachable past foreign droplets (jobRT.widen):
	// each failed re-synthesis widens the window by widenStep cells, up to
	// widenMax, after which only deadlock recovery can dissolve the jam.
	widenStep = 3
	widenMax  = 15
)

// concurrentState is the per-execution bookkeeping of the concurrent
// executor. Slices are indexed by operation id and survive rollbacks (a
// rolled-back operation keeps its yield count — that is what priority aging
// means).
type concurrentState struct {
	// waits is this cycle's wait-for graph: waits[d] is the droplet that d
	// could not move because of (collision block, unroutable hazard, or a
	// merge partner d is parked waiting for).
	waits map[*dropletRT]*dropletRT
	// yields[id] counts how many times operation id was the serialization
	// victim; the fewest-yields operation is victimized next, so a repeat
	// loser ages into priority.
	yields []int
	// deferUntil[id] / deferRivals[id] gate a serialized victim's
	// re-activation: not before the cycle deferUntil, unless every rival
	// listed is already done.
	deferUntil  []int
	deferRivals [][]int
	// spawnWait[id] counts consecutive cycles a pending dispense was
	// deferred; the arbiter serves longest-waiting first.
	spawnWait []int
}

func newConcurrentState(n int) *concurrentState {
	return &concurrentState{
		waits:       make(map[*dropletRT]*dropletRT),
		yields:      make([]int, n),
		deferUntil:  make([]int, n),
		deferRivals: make([][]int, n),
		spawnWait:   make([]int, n),
	}
}

func (cs *concurrentState) resetWaits() {
	for d := range cs.waits {
		delete(cs.waits, d)
	}
}

// mayActivate gates a serialized victim's re-activation: not before its
// deferral window expires, unless every recorded rival has finished. A victim
// with no recorded rivals waits out the full window.
func (cs *concurrentState) mayActivate(id, k int, mos []*moRT) bool {
	if k >= cs.deferUntil[id] {
		return true
	}
	if len(cs.deferRivals[id]) == 0 {
		return false
	}
	for _, rid := range cs.deferRivals[id] {
		if mos[rid].state != moDone {
			return false
		}
	}
	return true
}

// observeCycle feeds the per-timestamp concurrency telemetry.
func (cs *concurrentState) observeCycle(droplets int) {
	telConcurrentDroplets.Set(float64(droplets))
	telDropletsPerCycle.Observe(float64(droplets))
}

// canActivateConcurrent is the concurrent executor's activation rule,
// relaxing canReserve's whole-hazard-zone exclusivity to goal-site
// exclusivity: a ready operation activates unless one of its goal zones
// conflicts with an active operation's goal zone (two droplets steered into
// overlapping destinations could never separate again) or with a foreign
// resting droplet it does not claim (the route could never complete while
// that droplet rests there). Everything short of the goals — crossing
// corridors, shared hazard windows — is left to the per-move fluidic
// constraints, re-routing, and deadlock recovery. Because every resting
// droplet lies inside some producer's goal zone, this rule also maintains
// the invariant that resting outputs stay clear of active goals.
func (r *Runner) canActivateConcurrent(id int, mos []*moRT, droplets []*dropletRT, mine map[*dropletRT]bool) bool {
	margin := r.Cfg.CollisionMargin
	for _, j := range mos[id].jobs {
		for oid, om := range mos {
			if oid == id || om.state != moActive {
				continue
			}
			for _, oj := range om.jobs {
				if zoneConflict(j.rj.Goal, oj.rj.Goal, margin) {
					return false
				}
			}
		}
		for _, d := range droplets {
			if d.mo == -1 && !mine[d] && zoneConflict(j.rj.Goal, d.rect, margin) {
				return false
			}
		}
	}
	return true
}

// arbitrateSpawns resolves reservoir contention among pending dispenses:
// candidates are served longest-waiting first (ties in activation order), so
// a dispense whose shared entry area keeps being claimed by siblings cannot
// starve behind them.
func (r *Runner) arbitrateSpawns(cs *concurrentState, mos []*moRT, k int, droplets *[]*dropletRT, exec *Execution) {
	var pending []int
	for id, m := range mos {
		if m.state == moActive && m.cm.MO.Type == assay.Dis && m.jobs[0].droplet == nil {
			pending = append(pending, id)
		}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		return cs.spawnWait[pending[i]] > cs.spawnWait[pending[j]]
	})
	for _, id := range pending {
		m := mos[id]
		r.trySpawn(m, id, k, droplets)
		if m.jobs[0].droplet == nil {
			cs.spawnWait[id]++
			exec.DispenseDeferrals++
			telSpawnDeferrals.Inc()
		} else {
			cs.spawnWait[id] = 0
		}
	}
}

// unroutableBlocker picks the droplet most plausibly wedging an off-policy
// or unroutable job: the first foreign droplet inside the job's hazard
// window, preferring quasi-static ones. Used only to grow the wait-for
// graph; the per-droplet escapes keep working regardless.
func unroutableBlocker(d *dropletRT, droplets []*dropletRT) *dropletRT {
	var fallback *dropletRT
	zone := d.job.rj.Hazard
	for _, q := range droplets {
		if q == d || q.mo == d.mo || !zone.Overlaps(q.rect) {
			continue
		}
		if q.quasiStatic() {
			return q
		}
		if fallback == nil {
			fallback = q
		}
	}
	return fallback
}

// detectDeadlocks inspects this cycle's wait-for graph for droplets that
// have been stalled past patience in a cycle (A waits on B waits on … waits
// on A) or wedged behind a quasi-static droplet with no way around, and
// recovers by serializing a victim. Reports whether a recovery happened
// (at most one per cycle; the graph is recomputed next cycle).
func (r *Runner) detectDeadlocks(cs *concurrentState, mos []*moRT, plan *route.Plan,
	outputs map[outputKey]*dropletRT, droplets *[]*dropletRT, k int, exec *Execution) bool {
	// Rendezvous edges: a droplet parked in a merge goal waits for its
	// partner, so a jam wedging the partner behind another operation is
	// detected as the cross-operation cycle it really is.
	for _, m := range mos {
		if m.state != moActive {
			continue
		}
		t := m.cm.MO.Type
		if t != assay.Mix && !(t == assay.Dlt && m.phase == 0) {
			continue
		}
		d0, d1 := m.jobs[0].droplet, m.jobs[1].droplet
		if d0 == nil || d1 == nil || (m.jobs[0].done && m.jobs[1].done) {
			continue
		}
		if _, busy := cs.waits[d0]; !busy && d0.quasiStatic() {
			cs.waits[d0] = d1
		}
		if _, busy := cs.waits[d1]; !busy && d1.quasiStatic() {
			cs.waits[d1] = d0
		}
	}

	stuck := func(d *dropletRT) bool {
		return d.mo >= 0 && k-d.lastMove >= deadlockPatience
	}
	// Cycle pass: walk the wait-for chain from every stuck droplet; a chain
	// that bites its own tail through stuck droplets only is a deadlock.
	for _, d := range *droplets {
		if !stuck(d) || cs.waits[d] == nil {
			continue
		}
		seen := map[*dropletRT]int{}
		var chain []*dropletRT
		cur := d
		for cur != nil && stuck(cur) {
			if at, ok := seen[cur]; ok {
				if r.serializeCycle(cs, mos, plan, outputs, droplets, chain[at:], k, exec) {
					return true
				}
				break
			}
			seen[cur] = len(chain)
			chain = append(chain, cur)
			cur = cs.waits[cur]
		}
	}
	// Chain pass: a droplet wedged far past patience behind a quasi-static
	// foreign droplet (a resting output or a detained hold it cannot route
	// around) yields to whatever operation will eventually move the blocker.
	for _, d := range *droplets {
		b := cs.waits[d]
		if d.mo < 0 || b == nil || k-d.lastMove < chainPatience {
			continue
		}
		if b.mo == d.mo || !b.quasiStatic() {
			continue
		}
		var rivals []int
		if b.mo >= 0 {
			rivals = append(rivals, b.mo)
		} else if c := consumerOfOutput(plan, outputs, b); c >= 0 {
			rivals = append(rivals, c)
		}
		if r.Debug != nil {
			fmt.Fprintf(r.Debug, "chain-stall k=%d droplet(mo=%d rect=%v lastMove=%d) behind mo=%d rect=%v\n",
				k, d.mo, d.rect, d.lastMove, b.mo, b.rect)
		}
		r.recoverDeadlock(cs, mos, plan, outputs, droplets, d.mo, rivals, k, exec)
		return true
	}
	return false
}

// serializeCycle resolves one detected wait-for cycle. Among the operations
// owning the cycle's droplets, the one with the fewest prior yields is the
// victim (priority aging: past victims are spared next time); ties go to the
// cheapest rollback (fewest already-started operations reset), then the
// highest id. Reports false when the cycle spans a single operation —
// intra-operation waits are rendezvous choreography, not routing deadlocks.
func (r *Runner) serializeCycle(cs *concurrentState, mos []*moRT, plan *route.Plan,
	outputs map[outputKey]*dropletRT, droplets *[]*dropletRT, cycle []*dropletRT, k int, exec *Execution) bool {
	ops := map[int]bool{}
	for _, d := range cycle {
		if d.mo >= 0 {
			ops[d.mo] = true
		}
	}
	if len(ops) < 2 {
		return false
	}
	ids := make([]int, 0, len(ops))
	for id := range ops {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	victim := ids[0]
	vCost := rollbackCost(mos, plan, victim)
	for _, id := range ids[1:] {
		cost := rollbackCost(mos, plan, id)
		switch yi, yv := cs.yields[id], cs.yields[victim]; {
		case yi < yv:
			victim, vCost = id, cost
		case yi == yv && cost < vCost:
			victim, vCost = id, cost
		case yi == yv && cost == vCost && id > victim:
			victim, vCost = id, cost
		}
	}
	rivals := make([]int, 0, len(ids)-1)
	for _, id := range ids {
		if id != victim {
			rivals = append(rivals, id)
		}
	}
	r.recoverDeadlock(cs, mos, plan, outputs, droplets, victim, rivals, k, exec)
	return true
}

// recoverDeadlock performs the forced serialization: the victim operation
// (and whatever must re-run to regenerate its droplets) is rolled back to
// init and deferred until its rivals finish or the deferral window expires,
// and the rivals' strategies are refreshed now that the jam dissolved.
func (r *Runner) recoverDeadlock(cs *concurrentState, mos []*moRT, plan *route.Plan,
	outputs map[outputKey]*dropletRT, droplets *[]*dropletRT, victim int, rivals []int, k int, exec *Execution) {
	exec.Deadlocks++
	telDeadlocks.Inc()
	cs.yields[victim]++
	if r.Debug != nil {
		fmt.Fprintf(r.Debug, "deadlock k=%d victim=M%d(%s) rivals=%v yields=%d\n",
			k, victim, mos[victim].cm.MO.Type, rivals, cs.yields[victim])
	}
	rollback(mos, plan, victim, outputs, droplets, exec)
	exec.SerializedOps++
	telSerializedOps.Inc()
	cs.deferUntil[victim] = k + serializeDefer
	cs.deferRivals[victim] = rivals
	for _, rid := range rivals {
		for _, j := range mos[rid].jobs {
			if !j.done && j.droplet != nil {
				j.obstacleDirty = true
				j.blockedStreak = 0
				j.extraObstacles = nil
			}
		}
	}
}

// consumerOfOutput finds the operation that will eventually claim a resting
// output droplet, or -1 when none exists.
func consumerOfOutput(plan *route.Plan, outputs map[outputKey]*dropletRT, b *dropletRT) int {
	for key, d := range outputs {
		if d != b {
			continue
		}
		for id := range plan.MOs {
			for _, slot := range plan.MOs[id].InSlots {
				if slot[0] == key.mo && slot[1] == key.slot {
					return id
				}
			}
		}
	}
	return -1
}
