package sim

import (
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
)

// Hand-constructed deadlock scenarios: a 40×6 corridor chip where 3×3
// droplets at the default collision margin cannot pass each other
// (3 + 1 + 3 = 7 rows > 6), so opposed routes wedge head-on and only the
// executor's deadlock detection + victim serialization can finish the assay.

// corridorOp is one dispense→transport flow: a droplet enters at fromX and
// must reach toX on the corridor's center row before exiting.
type corridorOp struct{ fromX, toX float64 }

func corridorAssay(name string, flows []corridorOp) *assay.Assay {
	a := &assay.Assay{Name: name}
	for _, f := range flows {
		a.MOs = append(a.MOs, assay.MO{
			ID: len(a.MOs), Type: assay.Dis, Area: 9,
			Loc: []assay.Point{{X: f.fromX, Y: 3}},
		})
	}
	for i, f := range flows {
		a.MOs = append(a.MOs, assay.MO{
			ID: len(a.MOs), Type: assay.Out, Pre: []int{i},
			Loc: []assay.Point{{X: f.toX, Y: 3}},
		})
	}
	return a
}

// runCorridor executes a corridor scenario on the concurrent executor with
// hazard auditing enabled.
func runCorridor(t *testing.T, a *assay.Assay, seed uint64) Execution {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := route.Compile(a, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := robustChipConfig()
	ccfg.W, ccfg.H = 40, 6
	src := randx.New(seed)
	c, err := chip.New(ccfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.KMax = 2000
	cfg.CheckHazards = true
	cfg.Concurrent = true
	r := NewRunner(cfg, c, sched.NewBaseline(), src.Split("sim"))
	exec, err := r.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

// checkRecovered asserts the scenario actually deadlocked, that detection
// was prompt enough for the assay to still finish well inside the cycle
// bound, and that the recovery stayed hazard-free.
func checkRecovered(t *testing.T, name string, exec Execution, maxCycles int) {
	t.Helper()
	if !exec.Success {
		t.Fatalf("%s: executor did not complete: %+v", name, exec)
	}
	if exec.Deadlocks < 1 {
		t.Errorf("%s: expected a detected deadlock, got none (%+v)", name, exec)
	}
	if exec.SerializedOps < 1 {
		t.Errorf("%s: deadlock detected but no victim serialized (%+v)", name, exec)
	}
	if exec.HazardViolations != 0 {
		t.Errorf("%s: recovery violated %d hazards", name, exec.HazardViolations)
	}
	if exec.Cycles > maxCycles {
		t.Errorf("%s: took %d cycles (bound %d) — detection or recovery too slow",
			name, exec.Cycles, maxCycles)
	}
}

// TestDeadlockHeadOn2: two droplets entering from opposite ends of the
// corridor with crossing transport goals meet head-on where neither can pass
// nor route around. The wait-for cycle (each blocked by the other) must be
// detected within the stall patience and resolved by serializing one flow;
// both flows must still complete.
func TestDeadlockHeadOn2(t *testing.T) {
	a := corridorAssay("HeadOn2", []corridorOp{
		{fromX: 6, toX: 26},
		{fromX: 34, toX: 14},
	})
	exec := runCorridor(t, a, 7)
	checkRecovered(t, a.Name, exec, 600)
	t.Logf("head-on 2: %d cycles, %d deadlocks, %d serialized, %d redone",
		exec.Cycles, exec.Deadlocks, exec.SerializedOps, exec.RedoneOps)
}

// TestDeadlockCyclicWait3: three droplets with rotationally crossing goals —
// left→right across the middle, middle→left, right→middle — so the wait-for
// graph develops a head-on cycle plus a chained waiter behind it. Recovery
// must serialize victims (priority aging spreads the yielding across
// operations) until all three flows complete.
func TestDeadlockCyclicWait3(t *testing.T) {
	a := corridorAssay("CyclicWait3", []corridorOp{
		{fromX: 6, toX: 27},
		{fromX: 20, toX: 12},
		{fromX: 34, toX: 20},
	})
	exec := runCorridor(t, a, 7)
	checkRecovered(t, a.Name, exec, 900)
	t.Logf("cyclic 3: %d cycles, %d deadlocks, %d serialized, %d redone",
		exec.Cycles, exec.Deadlocks, exec.SerializedOps, exec.RedoneOps)
}

// TestDeadlockRecoveryDeterministic: deadlock detection and victim selection
// consume no randomness beyond the seeded source, so the same scenario at the
// same seed reproduces the identical execution summary.
func TestDeadlockRecoveryDeterministic(t *testing.T) {
	a := corridorAssay("CyclicWait3", []corridorOp{
		{fromX: 6, toX: 27},
		{fromX: 20, toX: 12},
		{fromX: 34, toX: 20},
	})
	first := runCorridor(t, a, 7)
	second := runCorridor(t, a, 7)
	if first != second {
		t.Errorf("same seed diverged:\n%+v\nvs\n%+v", first, second)
	}
}
