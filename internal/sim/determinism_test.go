package sim

import (
	"bytes"
	"fmt"
	"testing"

	"meda/internal/assay"
	"meda/internal/geom"
	"meda/internal/sched"
	"meda/internal/telemetry"
)

// simTrace runs one benchmark execution from a fresh chip and returns a
// byte-exact transcript: every cycle's actuation patterns (in hook order,
// which the runner fixes) plus the execution summary. All randomness flows
// through randx from the given seed, so two calls with the same arguments
// must return identical bytes.
func simTrace(t *testing.T, bench assay.Benchmark, seed uint64) []byte {
	return simTraceMode(t, bench, seed, false)
}

// simTraceMode is simTrace with the executor mode selectable: concurrent
// executions must be exactly as replayable as sequential ones — activation
// order, spawn arbitration, deadlock detection and victim selection are all
// deterministic in the seed.
func simTraceMode(t *testing.T, bench assay.Benchmark, seed uint64, concurrent bool) []byte {
	t.Helper()
	r := newRunner(t, robustChipConfig(), sched.NewAdaptive(), seed)
	r.Cfg.Concurrent = concurrent
	var buf bytes.Buffer
	r.Hook = func(k int, ps []geom.Rect) {
		fmt.Fprintf(&buf, "%d:", k)
		for _, p := range ps {
			fmt.Fprintf(&buf, " %v", p)
		}
		buf.WriteByte('\n')
	}
	exec, err := r.Execute(compile(t, bench, 16))
	if err != nil {
		t.Fatalf("%v: %v", bench, err)
	}
	fmt.Fprintf(&buf, "cycles=%d stalls=%d resyn=%d jobs=%d ok=%v\n",
		exec.Cycles, exec.Stalls, exec.Resyntheses, exec.JobsCompleted, exec.Success)
	return buf.Bytes()
}

// TestDeterministicTraces: the same seed yields byte-identical simulation
// traces across all six evaluation benchmarks. This is the regression guard
// for any code that accidentally consumes nature randomness (randx) on a
// path whose iteration order or call count is not itself deterministic —
// including the telemetry hooks, which must observe without perturbing.
func TestDeterministicTraces(t *testing.T) {
	for _, bench := range assay.EvaluationBenchmarks {
		first := simTrace(t, bench, 42)
		second := simTrace(t, bench, 42)
		if !bytes.Equal(first, second) {
			t.Errorf("%v: same seed produced different traces (%d vs %d bytes)",
				bench, len(first), len(second))
		}
	}
}

// TestTracingDoesNotPerturbSimulation: running with the span tracer
// installed produces the same simulation trace as running without it.
// Telemetry draws only on atomics and wall-clock time, never randx; a
// divergence here means instrumentation leaked into the model.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	plain := simTrace(t, assay.SerialDilution, 42)

	var spans bytes.Buffer
	tr := telemetry.NewTracer(&spans)
	telemetry.SetTracer(tr)
	defer telemetry.SetTracer(nil)
	traced := simTrace(t, assay.SerialDilution, 42)

	if !bytes.Equal(plain, traced) {
		t.Errorf("tracer changed the simulation trace (%d vs %d bytes)",
			len(plain), len(traced))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if spans.Len() == 0 {
		t.Error("tracer captured no spans during an instrumented execution")
	}
}

// TestDeterministicTracesConcurrent: the concurrent executor is as
// replayable as the sequential one — same seed, byte-identical traces across
// all six evaluation benchmarks.
func TestDeterministicTracesConcurrent(t *testing.T) {
	for _, bench := range assay.EvaluationBenchmarks {
		first := simTraceMode(t, bench, 42, true)
		second := simTraceMode(t, bench, 42, true)
		if !bytes.Equal(first, second) {
			t.Errorf("%v: same seed produced different concurrent traces (%d vs %d bytes)",
				bench, len(first), len(second))
		}
	}
}

// TestTracingDoesNotPerturbConcurrentSimulation: the span tracer must not
// perturb the concurrent executor either — its extra code paths (activation
// arbitration, deadlock recovery) observe telemetry but never consume it.
func TestTracingDoesNotPerturbConcurrentSimulation(t *testing.T) {
	plain := simTraceMode(t, assay.SerialDilution, 42, true)

	var spans bytes.Buffer
	tr := telemetry.NewTracer(&spans)
	telemetry.SetTracer(tr)
	defer telemetry.SetTracer(nil)
	traced := simTraceMode(t, assay.SerialDilution, 42, true)

	if !bytes.Equal(plain, traced) {
		t.Errorf("tracer changed the concurrent simulation trace (%d vs %d bytes)",
			len(plain), len(traced))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}
