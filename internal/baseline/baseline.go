// Package baseline implements the comparison router of Sec. VII-A: a
// degradation-unaware shortest-path strategy that minimizes the distance
// (in operational cycles) traveled by each droplet, using the same action
// alphabet as the adaptive synthesizer but assuming every microelectrode is
// healthy. It is the algorithm the paper's evaluation labels "baseline".
package baseline

import (
	"fmt"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/synth"
)

// ShortestPath computes the minimum-cycle routing strategy for a routing job
// by breadth-first search over the deterministic (always-successful) move
// graph restricted to the job's hazard bounds. It returns the policy and the
// number of cycles of the shortest route. Dispense jobs must be normalized
// first (synth.NormalizeDispense).
func ShortestPath(rj route.RJ, opt smg.ModelOptions) (synth.Policy, int, error) {
	if opt.MaxAspect <= 0 {
		opt = smg.DefaultModelOptions()
	}
	if rj.Start.IsZero() {
		return nil, 0, fmt.Errorf("baseline: %s has an off-chip start", rj.Name())
	}
	if !rj.Hazard.ContainsRect(rj.Start) || !rj.Hazard.ContainsRect(rj.Goal) {
		return nil, 0, fmt.Errorf("baseline: %s endpoints outside hazard bounds", rj.Name())
	}

	// Enumerate positions exactly like the synthesis model so the two
	// routers compete on the same playing field.
	type node struct {
		d    geom.Rect
		dist int
	}
	dist := map[geom.Rect]int{}
	policy := synth.Policy{}

	// Multi-source backward BFS from every goal-satisfying rectangle: the
	// droplet's shape is fixed (or morph-closed), edges cost one cycle.
	var frontier []geom.Rect
	seed := func(d geom.Rect) {
		if smg.GoalLabel(d, rj.Goal) {
			if _, ok := dist[d]; !ok {
				dist[d] = 0
				frontier = append(frontier, d)
			}
		}
	}
	// Walk the reachable rect space forward from the start to enumerate
	// candidate states (handles morph shapes without a separate pass),
	// then seed the goal set.
	states := enumerate(rj, opt)
	for _, d := range states {
		seed(d)
	}
	if len(frontier) == 0 {
		return nil, 0, fmt.Errorf("baseline: %s has no goal position for the droplet shape", rj.Name())
	}

	blockedAt := func(d geom.Rect) bool {
		if d == rj.Start {
			return false
		}
		for _, b := range opt.Blocked {
			if d.Overlaps(b) {
				return true
			}
		}
		return false
	}

	// Precompute reverse edges: for each state s and enabled action a,
	// record a(s) ← s. Blocked rectangles take part in no edge, so the
	// search routes around resting droplets exactly like the synthesizer.
	type rev struct {
		from geom.Rect
		act  action.Action
	}
	incoming := make(map[geom.Rect][]rev, len(states))
	for _, d := range states {
		if smg.GoalLabel(d, rj.Goal) || blockedAt(d) {
			continue
		}
		for _, a := range action.All() {
			if !allowed(a, opt) || !a.Enabled(d, opt.MaxAspect) {
				continue
			}
			nd := a.Apply(d)
			if !rj.Hazard.ContainsRect(nd) {
				continue
			}
			if !smg.GoalLabel(nd, rj.Goal) && blockedAt(nd) {
				continue
			}
			incoming[nd] = append(incoming[nd], rev{from: d, act: a})
		}
	}

	for len(frontier) > 0 {
		var next []geom.Rect
		for _, t := range frontier {
			for _, e := range incoming[t] {
				if _, seen := dist[e.from]; seen {
					continue
				}
				dist[e.from] = dist[t] + 1
				policy[e.from] = e.act
				next = append(next, e.from)
			}
		}
		frontier = next
	}

	d0, ok := dist[rj.Start]
	if !ok {
		return nil, 0, fmt.Errorf("baseline: %s goal unreachable within hazard bounds", rj.Name())
	}
	return policy, d0, nil
}

// enumerate lists every droplet rectangle of the job's shape family that
// fits within the hazard bounds.
func enumerate(rj route.RJ, opt smg.ModelOptions) []geom.Rect {
	first := [2]int{rj.Start.Width(), rj.Start.Height()}
	seen := map[[2]int]bool{first: true}
	shapes := [][2]int{first} // BFS order keeps the search deterministic
	if opt.AllowMorph {
		for i := 0; i < len(shapes); i++ {
			s := shapes[i]
			probe := geom.Rect{XA: 1, YA: 1, XB: s[0], YB: s[1]}
			for _, a := range action.All() {
				if cls := a.Class(); cls != action.Widen && cls != action.Heighten {
					continue
				}
				if !a.Enabled(probe, opt.MaxAspect) {
					continue
				}
				nd := a.Apply(probe)
				ns := [2]int{nd.Width(), nd.Height()}
				if !seen[ns] {
					seen[ns] = true
					shapes = append(shapes, ns)
				}
			}
		}
	}
	var out []geom.Rect
	for _, s := range shapes {
		w, h := s[0], s[1]
		for ya := rj.Hazard.YA; ya+h-1 <= rj.Hazard.YB; ya++ {
			for xa := rj.Hazard.XA; xa+w-1 <= rj.Hazard.XB; xa++ {
				out = append(out, geom.Rect{XA: xa, YA: ya, XB: xa + w - 1, YB: ya + h - 1})
			}
		}
	}
	return out
}

func allowed(a action.Action, opt smg.ModelOptions) bool {
	switch a.Class() {
	case action.Cardinal:
		return true
	case action.Double:
		return opt.AllowDouble
	case action.Ordinal:
		return opt.AllowOrdinal
	default:
		return opt.AllowMorph
	}
}
