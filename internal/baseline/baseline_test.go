package baseline

import (
	"testing"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/synth"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func job() route.RJ {
	return route.RJ{
		Start:  rect(1, 1, 3, 3),
		Goal:   rect(8, 8, 10, 10),
		Hazard: rect(1, 1, 10, 10),
	}
}

func TestShortestPathDiagonal(t *testing.T) {
	policy, cycles, err := ShortestPath(job(), smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 7 {
		t.Errorf("cycles = %d, want 7", cycles)
	}
	if a := policy[rect(1, 1, 3, 3)]; a != action.MoveNE {
		t.Errorf("first action = %v, want aNE", a)
	}
}

// TestMatchesSynthesizerOnHealthyField: the baseline shortest path equals
// the Rmin synthesis value on a fully healthy field — they are the same
// optimization when nothing fails.
func TestMatchesSynthesizerOnHealthyField(t *testing.T) {
	cases := []route.RJ{
		job(),
		{Start: rect(1, 1, 4, 4), Goal: rect(9, 1, 12, 4), Hazard: rect(1, 1, 20, 6)},
		{Start: rect(2, 2, 5, 4), Goal: rect(10, 6, 13, 8), Hazard: rect(1, 1, 15, 10)},
		{Start: rect(5, 5, 7, 7), Goal: rect(5, 5, 7, 7), Hazard: rect(1, 1, 12, 12)},
	}
	healthy := func(x, y int) float64 { return 1 }
	for i, rj := range cases {
		_, cycles, err := ShortestPath(rj, smg.DefaultModelOptions())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := synth.Synthesize(rj, healthy, synth.DefaultOptions())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if float64(cycles) != res.Value {
			t.Errorf("case %d: baseline %d cycles vs synthesis %v", i, cycles, res.Value)
		}
	}
}

func TestPolicyWalksToGoal(t *testing.T) {
	rj := job()
	policy, cycles, err := ShortestPath(rj, smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := rj.Start
	for step := 0; step < cycles; step++ {
		a, ok := policy[d]
		if !ok {
			t.Fatalf("policy undefined at %v", d)
		}
		d = a.Apply(d)
		if !rj.Hazard.ContainsRect(d) {
			t.Fatalf("walk left hazard bounds at %v", d)
		}
	}
	if !smg.GoalLabel(d, rj.Goal) {
		t.Errorf("walk ended at %v, not in goal %v", d, rj.Goal)
	}
}

func TestAlreadyAtGoal(t *testing.T) {
	rj := route.RJ{Start: rect(4, 4, 6, 6), Goal: rect(3, 3, 7, 7), Hazard: rect(1, 1, 10, 10)}
	_, cycles, err := ShortestPath(rj, smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 {
		t.Errorf("cycles = %d, want 0", cycles)
	}
}

func TestUnreachableGoal(t *testing.T) {
	// Goal region too small for the droplet shape: a 3×3 droplet cannot
	// fit a 2×2 goal.
	rj := route.RJ{Start: rect(1, 1, 3, 3), Goal: rect(8, 8, 9, 9), Hazard: rect(1, 1, 10, 10)}
	if _, _, err := ShortestPath(rj, smg.DefaultModelOptions()); err == nil {
		t.Error("impossible goal accepted")
	}
}

func TestErrorCases(t *testing.T) {
	rj := job()
	rj.Start = geom.ZeroRect
	if _, _, err := ShortestPath(rj, smg.DefaultModelOptions()); err == nil {
		t.Error("off-chip start accepted")
	}
	rj = job()
	rj.Goal = rect(20, 20, 22, 22)
	if _, _, err := ShortestPath(rj, smg.DefaultModelOptions()); err == nil {
		t.Error("goal outside hazard accepted")
	}
}

// TestNoDoubleNoOrdinal: restricting the alphabet lengthens the route:
// Manhattan distance 14 without ordinals, 7 with.
func TestNoDoubleNoOrdinal(t *testing.T) {
	opt := smg.DefaultModelOptions()
	opt.AllowOrdinal = false
	opt.AllowDouble = false
	_, cycles, err := ShortestPath(job(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 14 {
		t.Errorf("cardinal-only cycles = %d, want 14", cycles)
	}
}

// TestMorphShortcut: with morphing allowed the baseline can reshape to fit a
// goal of a different shape.
func TestMorphShortcut(t *testing.T) {
	rj := route.RJ{
		Start:  rect(1, 1, 4, 4),  // 4×4
		Goal:   rect(8, 1, 12, 3), // exactly fits a 5×3
		Hazard: rect(1, 1, 14, 6),
	}
	opt := smg.DefaultModelOptions()
	if _, _, err := ShortestPath(rj, opt); err == nil {
		t.Error("4×4 droplet cannot satisfy a 5×3 goal without morphing")
	}
	opt.AllowMorph = true
	_, cycles, err := ShortestPath(rj, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cycles < 1 {
		t.Errorf("morph route cycles = %d", cycles)
	}
}

// TestBaselineIgnoresDegradation is the defining property: the baseline
// produces the same strategy regardless of microelectrode health, which is
// why it fails on degraded chips (Sec. VII).
func TestBaselineIgnoresDegradation(t *testing.T) {
	// ShortestPath takes no health input at all; this test documents that
	// the API cannot observe degradation.
	p1, c1, err := ShortestPath(job(), smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := ShortestPath(job(), smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || len(p1) != len(p2) {
		t.Error("baseline must be deterministic")
	}
	for d, a := range p1 {
		if p2[d] != a {
			t.Errorf("baseline not deterministic at %v", d)
		}
	}
}
