package vis

import (
	"bytes"
	"strings"
	"testing"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/synth"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func smallChip(t *testing.T) *chip.Chip {
	t.Helper()
	cfg := chip.Config{W: 10, H: 5, HealthBits: 2, Normal: degrade.DefaultNormal}
	c, err := chip.New(cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHealthMapFresh(t *testing.T) {
	c := smallChip(t)
	var buf bytes.Buffer
	HealthMap(&buf, c)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rows = %d, want 5", len(lines))
	}
	for _, l := range lines {
		if l != strings.Repeat(".", 10) {
			t.Fatalf("fresh chip row = %q", l)
		}
	}
}

func TestHealthMapOverlayAndDead(t *testing.T) {
	cfg := chip.Config{W: 10, H: 5, HealthBits: 2,
		Normal: degrade.ParamRange{Tau1: 0.1, Tau2: 0.11, C1: 5, C2: 6}}
	c, err := chip.New(cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Actuate(rect(1, 1, 2, 1))
	}
	var buf bytes.Buffer
	HealthMap(&buf, c, rect(9, 5, 10, 5))
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Error("dead cells not rendered")
	}
	if !strings.Contains(out, "A") {
		t.Error("overlay not rendered")
	}
	// Overlay is on the top row (printed first).
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.HasSuffix(first, "AA") {
		t.Errorf("top row = %q", first)
	}
}

func TestWearMapGlyphs(t *testing.T) {
	c := smallChip(t)
	for i := 0; i < 60; i++ {
		c.Actuate(rect(3, 2, 4, 3))
	}
	c.Actuate(rect(7, 1, 7, 1))
	var buf bytes.Buffer
	WearMap(&buf, c)
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Error("medium wear glyph missing")
	}
	if !strings.Contains(out, ".") {
		t.Error("light wear glyph missing")
	}
	if !strings.Contains(out, " ") {
		t.Error("untouched glyph missing")
	}
}

func TestArrowCoverage(t *testing.T) {
	for _, a := range action.All() {
		if Arrow(a) == '?' {
			t.Errorf("action %v has no arrow", a)
		}
	}
	if Arrow(action.Action(200)) != '?' {
		t.Error("unknown action should render '?'")
	}
}

func TestPolicyMap(t *testing.T) {
	policy := synth.Policy{
		rect(1, 1, 3, 3): action.MoveNE,
		rect(2, 2, 4, 4): action.MoveE,
	}
	var buf bytes.Buffer
	PolicyMap(&buf, rect(1, 1, 6, 6), rect(5, 5, 6, 6), policy, rect(4, 1, 4, 1))
	out := buf.String()
	if !strings.Contains(out, "↗") || !strings.Contains(out, "→") {
		t.Errorf("arrows missing:\n%s", out)
	}
	if !strings.Contains(out, "G") {
		t.Error("goal marker missing")
	}
	if !strings.Contains(out, "#") {
		t.Error("blocked marker missing")
	}
}

func TestTrajectory(t *testing.T) {
	policy := synth.Policy{
		rect(1, 1, 3, 3): action.MoveE,
		rect(2, 1, 4, 3): action.MoveE,
	}
	var buf bytes.Buffer
	Trajectory(&buf, rect(1, 1, 3, 3), rect(3, 1, 5, 3), policy, 10)
	out := buf.String()
	if !strings.Contains(out, "(goal)") {
		t.Errorf("trajectory did not reach goal:\n%s", out)
	}
	// A policy hole is reported, not looped on.
	buf.Reset()
	Trajectory(&buf, rect(1, 1, 3, 3), rect(9, 9, 11, 11), synth.Policy{}, 10)
	if !strings.Contains(buf.String(), "(no action)") {
		t.Error("missing-action case not reported")
	}
}
