// Package vis renders biochip state as ASCII maps: observed health
// matrices, droplet positions, routing-job geometry, and synthesized
// policies. The renderers are used by the example programs and the
// command-line tools; they are deliberately plain text so simulation runs
// can be inspected anywhere.
package vis

import (
	"fmt"
	"io"
	"strings"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/synth"
)

// HealthMap writes the observed health matrix of the chip, north row first:
// '.' for the top (fully healthy) code, '#' for the zero (dead) code, and
// the decimal digit of intermediate codes. Overlay rectangles, if given, are
// drawn with letters 'A', 'B', … taking precedence.
func HealthMap(w io.Writer, c *chip.Chip, overlays ...geom.Rect) {
	top := 1<<uint(c.HealthBits()) - 1
	for y := c.H(); y >= 1; y-- {
		var b strings.Builder
		for x := 1; x <= c.W(); x++ {
			cell := geom.Cell{X: x, Y: y}
			drawn := false
			for i, r := range overlays {
				if r.Contains(cell) {
					b.WriteByte(byte('A' + i%26))
					drawn = true
					break
				}
			}
			if drawn {
				continue
			}
			switch h := c.Health(x, y); {
			case h == top:
				b.WriteByte('.')
			case h == 0:
				b.WriteByte('#')
			default:
				fmt.Fprintf(&b, "%d", h%10)
			}
		}
		fmt.Fprintln(w, b.String())
	}
}

// WearMap writes the actuation-count matrix bucketed into single
// characters: ' ' untouched, then '.', ':', '*', '%', '@' for exponentially
// increasing wear.
func WearMap(w io.Writer, c *chip.Chip) {
	glyph := func(n int) byte {
		switch {
		case n == 0:
			return ' '
		case n < 10:
			return '.'
		case n < 50:
			return ':'
		case n < 200:
			return '*'
		case n < 800:
			return '%'
		default:
			return '@'
		}
	}
	for y := c.H(); y >= 1; y-- {
		var b strings.Builder
		for x := 1; x <= c.W(); x++ {
			b.WriteByte(glyph(c.Actuations(x, y)))
		}
		fmt.Fprintln(w, b.String())
	}
}

// arrow maps each action to a single display rune.
var arrows = map[action.Action]rune{
	action.MoveN: '↑', action.MoveS: '↓', action.MoveE: '→', action.MoveW: '←',
	action.MoveNN: '⇑', action.MoveSS: '⇓', action.MoveEE: '⇒', action.MoveWW: '⇐',
	action.MoveNE: '↗', action.MoveNW: '↖', action.MoveSE: '↘', action.MoveSW: '↙',
	action.WidenNE: 'w', action.WidenNW: 'w', action.WidenSE: 'w', action.WidenSW: 'w',
	action.HeightenNE: 'h', action.HeightenNW: 'h', action.HeightenSE: 'h', action.HeightenSW: 'h',
}

// Arrow returns the display rune of an action ('?' for unknown).
func Arrow(a action.Action) rune {
	if r, ok := arrows[a]; ok {
		return r
	}
	return '?'
}

// PolicyMap writes a routing strategy over a region: at each position where
// the policy defines an action for a droplet whose lower-left corner is that
// cell, the action's arrow is drawn; 'G' marks the goal region and '#'
// blocked overlays.
func PolicyMap(w io.Writer, region, goal geom.Rect, policy synth.Policy, blocked ...geom.Rect) {
	// Index policy by lower-left corner (unique per position for a fixed
	// droplet shape).
	byCorner := make(map[geom.Cell]action.Action, len(policy))
	for d, a := range policy {
		byCorner[geom.Cell{X: d.XA, Y: d.YA}] = a
	}
	for y := region.YB; y >= region.YA; y-- {
		var b strings.Builder
		for x := region.XA; x <= region.XB; x++ {
			cell := geom.Cell{X: x, Y: y}
			switch {
			case goal.Contains(cell):
				b.WriteRune('G')
			case contains(blocked, cell):
				b.WriteRune('#')
			default:
				if a, ok := byCorner[cell]; ok {
					b.WriteRune(Arrow(a))
				} else {
					b.WriteRune('·')
				}
			}
		}
		fmt.Fprintln(w, b.String())
	}
}

// Trajectory writes the most-likely droplet path under a policy: the
// sequence of rectangles from start until the goal (or until the policy runs
// out), one line per step.
func Trajectory(w io.Writer, rj geom.Rect, goal geom.Rect, policy synth.Policy, maxSteps int) {
	pos := rj
	for step := 0; step <= maxSteps; step++ {
		if goal.ContainsRect(pos) {
			fmt.Fprintf(w, "%3d: %v  (goal)\n", step, pos)
			return
		}
		a, ok := policy[pos]
		if !ok {
			fmt.Fprintf(w, "%3d: %v  (no action)\n", step, pos)
			return
		}
		fmt.Fprintf(w, "%3d: %v  %v\n", step, pos, a)
		pos = a.Apply(pos)
	}
	fmt.Fprintln(w, "     ... truncated")
}

func contains(rects []geom.Rect, c geom.Cell) bool {
	for _, r := range rects {
		if r.Contains(c) {
			return true
		}
	}
	return false
}
