package synth

import (
	"sync"
	"sync/atomic"
	"testing"

	"meda/internal/geom"
	"meda/internal/route"
)

func poolJob() route.RJ {
	return route.RJ{
		Start:  geom.Rect{XA: 1, YA: 1, XB: 3, YB: 3},
		Goal:   geom.Rect{XA: 10, YA: 10, XB: 12, YB: 12},
		Hazard: geom.Rect{XA: 1, YA: 1, XB: 14, YB: 14},
	}
}

func TestPoolSubmitMatchesDirectSynthesis(t *testing.T) {
	field := func(x, y int) float64 { return 0.81 }
	rj := poolJob()
	want, err := Synthesize(rj, field, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	var futs []*Future
	for i := 0; i < 6; i++ {
		futs = append(futs, p.Submit(rj, field, DefaultOptions()))
	}
	for i, f := range futs {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !got.Exists() || got.Value != want.Value {
			t.Fatalf("job %d: value %v, want %v", i, got.Value, want.Value)
		}
		if len(got.Policy) != len(want.Policy) {
			t.Fatalf("job %d: policy size %d, want %d", i, len(got.Policy), len(want.Policy))
		}
	}
	p.Wait()
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
	}
	var running, peak int32
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		p.Go(func() {
			n := atomic.AddInt32(&running, 1)
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			atomic.AddInt32(&running, -1)
		})
	}
	p.Wait()
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", peak, workers)
	}
}

func TestPoolTryGoRefusesWhenSaturated(t *testing.T) {
	p := NewPool(1)
	block := make(chan struct{})
	started := make(chan struct{})
	p.Go(func() {
		close(started)
		<-block
	})
	<-started
	if p.TryGo(func() {}) {
		t.Error("TryGo succeeded on a saturated pool")
	}
	close(block)
	p.Wait()
	if !p.TryGo(func() {}) {
		t.Error("TryGo failed on an idle pool")
	}
	p.Wait()
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
}

func TestFutureReady(t *testing.T) {
	p := NewPool(1)
	f := p.Submit(poolJob(), func(x, y int) float64 { return 1 }, DefaultOptions())
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if !f.Ready() {
		t.Error("Ready() false after Wait returned")
	}
}
