package synth

import "meda/internal/telemetry"

// Synthesis telemetry (internal/telemetry default registry). The span tree
// of one Synthesize call is synth.synthesize → {synth.model_build,
// synth.solve, synth.extract}, mirroring the phases of Alg. 2 whose
// durations Stats reports per call; the counters aggregate them
// process-wide.
var (
	telSyntheses   = telemetry.C("synth.syntheses")
	telConstructNs = telemetry.C("synth.construct_ns")
	telSolveNs     = telemetry.C("synth.solve_ns")
	// telStates is the distribution of induced model sizes.
	telStates = telemetry.H("synth.model_states",
		100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1e6)

	// Pool telemetry: jobs accepted, queue depth (accepted but waiting for
	// a worker slot) and active workers, sampled as gauges.
	telPoolJobs   = telemetry.C("synth.pool.jobs")
	telPoolQueued = telemetry.G("synth.pool.queue_depth")
	telPoolActive = telemetry.G("synth.pool.active")

	// Arena telemetry: model-construction slab recycling. Every Synthesize
	// checks an arena out of a sync.Pool (gets); a get whose arena has
	// built before is a reuse — its slabs are warm and construction runs
	// allocation-free. The gauge tracks the process-lifetime reuse ratio.
	telArenaGets       = telemetry.C("synth.arena.gets")
	telArenaReuses     = telemetry.C("synth.arena.reuses")
	telArenaReuseRatio = telemetry.G("synth.arena.reuse_ratio")
)
