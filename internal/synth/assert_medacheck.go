//go:build medacheck

package synth

import (
	"fmt"

	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/modelcheck"
	"meda/internal/smg"
)

// assertReduced verifies every model-level invariant over the reduced
// per-job MDP (and, when non-nil, the extracted strategy) when built with
// the medacheck tag. Violations are bugs in the reduction or the solver,
// not user errors, so they panic.
func assertReduced(model *smg.Model, st mdp.Strategy, bounds geom.Rect) {
	if vs := modelcheck.CheckReduced(model, st, bounds); len(vs) > 0 {
		msg := fmt.Sprintf("synth: medacheck: reduced model failed verification (%d violations):", len(vs))
		for _, v := range vs {
			msg += "\n  " + v.String()
		}
		panic(msg)
	}
}
