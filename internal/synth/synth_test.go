package synth

import (
	"math"
	"testing"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/spec"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func healthy(x, y int) float64 { return 1 }

func simpleRJ() route.RJ {
	return route.RJ{
		MO: 1, Index: 0,
		Start:  rect(1, 1, 3, 3),
		Goal:   rect(8, 8, 10, 10),
		Hazard: rect(1, 1, 10, 10),
	}
}

func TestSynthesizeRMin(t *testing.T) {
	res, err := Synthesize(simpleRJ(), healthy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists() {
		t.Fatal("strategy must exist on a healthy field")
	}
	if math.Abs(res.Value-7) > 1e-6 {
		t.Errorf("expected cycles = %v, want 7", res.Value)
	}
	if res.Stats.States != 67 {
		t.Errorf("states = %d, want 67 (Table V row 1)", res.Stats.States)
	}
	if res.Stats.Construction <= 0 || res.Stats.Synthesis <= 0 {
		t.Error("timings must be positive")
	}
	if res.Stats.Total() != res.Stats.Construction+res.Stats.Synthesis {
		t.Error("total time mismatch")
	}
	if a, ok := res.Policy[rect(1, 1, 3, 3)]; !ok || a != action.MoveNE {
		t.Errorf("policy at start = %v/%v, want aNE", a, ok)
	}
}

func TestSynthesizePMax(t *testing.T) {
	opt := DefaultOptions()
	opt.Query = spec.RoutingQuery(spec.PMax)
	res, err := Synthesize(simpleRJ(), healthy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists() {
		t.Fatal("strategy must exist")
	}
	if math.Abs(res.Value-1) > 1e-6 {
		t.Errorf("Pmax = %v, want 1 on a healthy field", res.Value)
	}
}

func TestSynthesizeNoStrategy(t *testing.T) {
	// A full-height dead wall: PRISMG-style (∅, ∞).
	field := func(x, y int) float64 {
		if x == 6 {
			return 0
		}
		return 1
	}
	rj := route.RJ{Start: rect(1, 4, 3, 6), Goal: rect(8, 4, 10, 6), Hazard: rect(1, 1, 10, 10)}
	res, err := Synthesize(rj, field, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists() {
		t.Error("no strategy should exist through a dead wall")
	}
	if !math.IsInf(res.Value, 1) {
		t.Errorf("value = %v, want +Inf", res.Value)
	}
	if len(res.Policy) != 0 {
		t.Error("policy must be empty when no strategy exists")
	}
	// The Pmax query agrees: probability 0.
	opt := DefaultOptions()
	opt.Query = spec.RoutingQuery(spec.PMax)
	res, err = Synthesize(rj, field, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists() || res.Value != 0 {
		t.Errorf("Pmax result = %v/%v, want 0/absent", res.Value, res.Exists())
	}
}

func TestSynthesizeDegradedDetour(t *testing.T) {
	// A partially degraded column makes the straight path slower; the
	// expected cycles must grow accordingly but stay finite.
	field := func(x, y int) float64 {
		if x == 6 {
			return 0.25
		}
		return 1
	}
	res, err := Synthesize(simpleRJ(), field, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists() {
		t.Fatal("strategy must exist")
	}
	if res.Value <= 7 {
		t.Errorf("degraded field should cost more than 7 cycles, got %v", res.Value)
	}
	if res.Value > 30 {
		t.Errorf("cost unreasonably high: %v", res.Value)
	}
}

func TestSynthesizeRejectsOffChipStart(t *testing.T) {
	rj := route.RJ{Dispense: true, Goal: rect(2, 2, 4, 4), Hazard: rect(1, 1, 7, 7)}
	if _, err := Synthesize(rj, healthy, DefaultOptions()); err == nil {
		t.Error("off-chip start accepted")
	}
}

func TestNormalizeDispense(t *testing.T) {
	rj := route.RJ{
		MO: 0, Index: 0, Dispense: true,
		Goal:   rect(16, 1, 19, 4),
		Hazard: rect(13, 1, 22, 7),
	}
	n := NormalizeDispense(rj, 60, 30)
	if n.Start.IsZero() {
		t.Fatal("normalized dispense must have an on-chip start")
	}
	if n.Start != rect(16, 1, 19, 4) {
		t.Errorf("entry = %v, want goal at the edge", n.Start)
	}
	if !n.Hazard.ContainsRect(n.Start) || !n.Hazard.ContainsRect(n.Goal) {
		t.Error("hazard must cover entry and goal")
	}
	// Non-dispense jobs pass through unchanged.
	plain := simpleRJ()
	if NormalizeDispense(plain, 60, 30) != plain {
		t.Error("non-dispense job modified")
	}
	// Synthesizing the normalized job succeeds (trivially at goal).
	res, err := Synthesize(n, healthy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("edge dispense expected cycles = %v, want 0", res.Value)
	}
}

func TestPolicyTranslate(t *testing.T) {
	p := Policy{rect(1, 1, 3, 3): action.MoveNE, rect(2, 1, 4, 3): action.MoveN}
	q := p.Translate(10, 5)
	if len(q) != 2 {
		t.Fatal("translated policy size wrong")
	}
	if q[rect(11, 6, 13, 8)] != action.MoveNE {
		t.Error("translation lost an entry")
	}
	if q[rect(12, 6, 14, 8)] != action.MoveN {
		t.Error("translation lost an entry")
	}
}

// TestTranslationInvariance: synthesizing the same job shifted by (dx, dy)
// on a uniform field yields the shifted policy — the property that makes the
// offline strategy library sound.
func TestTranslationInvariance(t *testing.T) {
	a, err := Synthesize(simpleRJ(), healthy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	shifted := simpleRJ()
	shifted.Start = shifted.Start.Translate(7, 3)
	shifted.Goal = shifted.Goal.Translate(7, 3)
	shifted.Hazard = shifted.Hazard.Translate(7, 3)
	b, err := Synthesize(shifted, healthy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-9 {
		t.Fatalf("values differ: %v vs %v", a.Value, b.Value)
	}
	moved := a.Policy.Translate(7, 3)
	if len(moved) != len(b.Policy) {
		t.Fatalf("policy sizes differ: %d vs %d", len(moved), len(b.Policy))
	}
	for d, act := range b.Policy {
		if moved[d] != act {
			// Ties between equal-value actions may break differently;
			// accept if both actions achieve the same one-step value.
			// With Gauss-Seidel and identical iteration order on a
			// translated model, they should not.
			t.Fatalf("policy differs at %v: %v vs %v", d, moved[d], act)
		}
	}
}

func TestSynthesizeUnknownLabel(t *testing.T) {
	opt := DefaultOptions()
	opt.Query = spec.Query{Kind: spec.RMin, Reach: "nonsense"}
	if _, err := Synthesize(simpleRJ(), healthy, opt); err == nil {
		t.Error("unknown label accepted")
	}
	opt.Query = spec.Query{Kind: spec.RMin, Reach: "goal", Avoid: "nonsense"}
	if _, err := Synthesize(simpleRJ(), healthy, opt); err == nil {
		t.Error("unknown avoid label accepted")
	}
}

// TestTableVModelSizes reproduces the #States column of Table V through the
// full synthesis path and checks that the model sizes scale the right way:
// for a fixed area, smaller droplets induce larger models. Like the paper,
// it uses a worst-case health matrix with no zero elements — and, so that
// failure branches exist, with success probabilities strictly below 1.
func TestTableVModelSizes(t *testing.T) {
	worn := func(x, y int) float64 { return 0.81 }
	for _, area := range []int{10, 20} {
		prev := 1 << 30
		for _, d := range []int{3, 4, 5, 6} {
			rj := route.RJ{
				Start:  rect(1, 1, d, d),
				Goal:   rect(area-d+1, area-d+1, area, area),
				Hazard: rect(1, 1, area, area),
			}
			res, err := Synthesize(rj, worn, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			want := (area-d+1)*(area-d+1) + 3
			if res.Stats.States != want {
				t.Errorf("area %d droplet %d: states = %d, want %d", area, d, res.Stats.States, want)
			}
			if res.Stats.States >= prev {
				t.Errorf("area %d: states must shrink as droplet grows", area)
			}
			prev = res.Stats.States
			if res.Stats.Choices <= res.Stats.States {
				t.Errorf("choices (%d) should exceed states (%d)", res.Stats.Choices, res.Stats.States)
			}
			if res.Stats.Transitions <= res.Stats.Choices {
				t.Errorf("transitions (%d) should exceed choices (%d)", res.Stats.Transitions, res.Stats.Choices)
			}
		}
	}
}

// TestMorphOptionPropagates: enabling morphing grows the model.
func TestMorphOptionPropagates(t *testing.T) {
	base, err := Synthesize(simpleRJ(), healthy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Model.AllowMorph = true
	morphed, err := Synthesize(simpleRJ(), healthy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if morphed.Stats.States <= base.Stats.States {
		t.Errorf("morph model (%d states) should exceed base (%d)", morphed.Stats.States, base.Stats.States)
	}
}

var _ = smg.DefaultModelOptions // keep import for readability of options

// TestPmaxValuesCertified cross-checks the value-iteration Pmax result with
// interval iteration's certified bounds on a degraded routing model — the
// in-repo substitute for validating against PRISM-games.
func TestPmaxValuesCertified(t *testing.T) {
	worn := func(x, y int) float64 { return 0.49 }
	opt := DefaultOptions()
	opt.Query = spec.RoutingQuery(spec.PMax)
	opt.RetainModel = true
	res, err := Synthesize(simpleRJ(), worn, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := res.Model.M.MaxReachProb(res.Model.Goal, res.Model.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := res.Model.M.CertifyMaxReachProb(p.Values, res.Model.Goal, res.Model.Hazard,
		mdp.SolveOptions{Eps: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-6 {
		t.Errorf("VI values violate certified bounds by %v", worst)
	}
}
