// D4 canonicalization of routing jobs. Two routing jobs that differ only by
// a translation, rotation, or reflection of the (hazard window, start, goal)
// triple have strategies that differ by exactly that symmetry — provided the
// force field inside the window is uniform, so the field itself is invariant
// under the transformation. Canonicalize maps a job to a canonical
// representative of its symmetry class: the window is translated to origin
// (1,1) and the dihedral-group element that lexicographically minimizes the
// (width, height, start, goal) tuple is applied. Keying a strategy cache on
// the canonical form turns per-position entries into per-shape entries: all
// eight images of a job at every position on the chip share one cache line.
//
// The returned Transform converts between the two coordinate spaces, both
// for rectangles and for whole policies; action identities are conjugated
// through a table derived at init by geometric probing (for each group
// element, the image of each action is the unique action whose effect on a
// transformed probe droplet matches the transformed effect — this also
// verifies at startup that the 20-action alphabet is closed under D4).
package synth

import (
	"fmt"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/route"
)

// Transform is one element of the symmetry group used by Canonicalize: a
// translation of the hazard window to origin followed by a dihedral
// operation inside the window. It maps original-job coordinates to
// canonical coordinates and back.
type Transform struct {
	// Op encodes the dihedral element: bit 0 transposes x/y, bit 1 flips x,
	// bit 2 flips y (flips are applied after the transpose, about the
	// transposed window's axes).
	Op uint8
	// X0, Y0, W, H frame the original hazard window.
	X0, Y0, W, H int
}

const (
	opSwap  = 1
	opFlipX = 2
	opFlipY = 4
	numOps  = 8
)

// dims returns the canonical window's width and height.
func (t Transform) dims() (int, int) {
	if t.Op&opSwap != 0 {
		return t.H, t.W
	}
	return t.W, t.H
}

// point maps an original-coordinate cell into canonical space.
func (t Transform) point(x, y int) (int, int) {
	u, v := x-t.X0, y-t.Y0
	if t.Op&opSwap != 0 {
		u, v = v, u
	}
	w, h := t.dims()
	if t.Op&opFlipX != 0 {
		u = w - 1 - u
	}
	if t.Op&opFlipY != 0 {
		v = h - 1 - v
	}
	return u + 1, v + 1
}

// unpoint maps a canonical-space cell back to original coordinates.
func (t Transform) unpoint(x, y int) (int, int) {
	u, v := x-1, y-1
	w, h := t.dims()
	if t.Op&opFlipX != 0 {
		u = w - 1 - u
	}
	if t.Op&opFlipY != 0 {
		v = h - 1 - v
	}
	if t.Op&opSwap != 0 {
		u, v = v, u
	}
	return u + t.X0, v + t.Y0
}

// Apply maps a rectangle from original to canonical coordinates.
func (t Transform) Apply(r geom.Rect) geom.Rect {
	xa, ya := t.point(r.XA, r.YA)
	xb, yb := t.point(r.XB, r.YB)
	return normRect(xa, ya, xb, yb)
}

// Invert maps a rectangle from canonical back to original coordinates.
func (t Transform) Invert(r geom.Rect) geom.Rect {
	xa, ya := t.unpoint(r.XA, r.YA)
	xb, yb := t.unpoint(r.XB, r.YB)
	return normRect(xa, ya, xb, yb)
}

func normRect(xa, ya, xb, yb int) geom.Rect {
	if xa > xb {
		xa, xb = xb, xa
	}
	if ya > yb {
		ya, yb = yb, ya
	}
	return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb}
}

// ApplyPolicy maps a policy from original to canonical coordinates,
// conjugating each action through the dihedral element.
func (t Transform) ApplyPolicy(p Policy) Policy {
	if p == nil {
		return nil
	}
	out := make(Policy, len(p))
	conj := &conjTable[t.Op]
	for d, a := range p {
		out[t.Apply(d)] = conj[a]
	}
	return out
}

// InvertPolicy maps a canonical-space policy back to original coordinates —
// the de-canonicalization applied after a canonical cache hit.
func (t Transform) InvertPolicy(p Policy) Policy {
	if p == nil {
		return nil
	}
	out := make(Policy, len(p))
	conj := &conjInvTable[t.Op]
	for d, a := range p {
		out[t.Invert(d)] = conj[a]
	}
	return out
}

// Canonicalize returns the canonical representative of the job's symmetry
// class and the transform from the job's coordinates to the canonical ones.
// The canonical job's hazard window starts at (1,1); among the eight
// dihedral images the one minimizing the (width, height, start, goal) tuple
// lexicographically is chosen, so every translated/rotated/reflected copy
// of a job maps to the identical canonical job. The caller is responsible
// for only treating two jobs as equivalent when the force field over their
// windows is uniform (chip.UniformHealth); canonicalization itself is pure
// geometry.
//
//meda:deterministic
//meda:hotpath
func Canonicalize(rj route.RJ) (route.RJ, Transform) {
	base := Transform{X0: rj.Hazard.XA, Y0: rj.Hazard.YA, W: rj.Hazard.Width(), H: rj.Hazard.Height()}
	var best route.RJ
	var bestT Transform
	for op := uint8(0); op < numOps; op++ {
		t := base
		t.Op = op
		w, h := t.dims()
		cand := route.RJ{
			Start:  t.Apply(rj.Start),
			Goal:   t.Apply(rj.Goal),
			Hazard: geom.Rect{XA: 1, YA: 1, XB: w, YB: h},
		}
		if op == 0 || lessRJ(cand, best) {
			best, bestT = cand, t
		}
	}
	return best, bestT
}

// lessRJ orders candidate canonical forms: window dims, then start, then
// goal, each lexicographically.
func lessRJ(a, b route.RJ) bool {
	if a.Hazard.XB != b.Hazard.XB {
		return a.Hazard.XB < b.Hazard.XB
	}
	if a.Hazard.YB != b.Hazard.YB {
		return a.Hazard.YB < b.Hazard.YB
	}
	if a.Start != b.Start {
		return lessRect(a.Start, b.Start)
	}
	return lessRect(a.Goal, b.Goal)
}

func lessRect(a, b geom.Rect) bool {
	if a.XA != b.XA {
		return a.XA < b.XA
	}
	if a.YA != b.YA {
		return a.YA < b.YA
	}
	if a.XB != b.XB {
		return a.XB < b.XB
	}
	return a.YB < b.YB
}

// conjTable[op][a] is the action whose effect in the transformed frame
// matches action a's effect in the original frame; conjInvTable is the
// per-op inverse permutation.
var conjTable, conjInvTable [numOps][action.NumActions]action.Action

func init() {
	// Probe with an asymmetric droplet so every action's Apply image is
	// distinct and shape changes (widen vs heighten) are distinguishable.
	probe := geom.Rect{XA: 0, YA: 0, XB: 2, YB: 1}
	// The linear part of the dihedral element (flips as negations; actions
	// are translation-covariant, so the window-centered flip conjugates
	// identically).
	lin := func(op uint8, x, y int) (int, int) {
		if op&opSwap != 0 {
			x, y = y, x
		}
		if op&opFlipX != 0 {
			x = -x
		}
		if op&opFlipY != 0 {
			y = -y
		}
		return x, y
	}
	linRect := func(op uint8, r geom.Rect) geom.Rect {
		xa, ya := lin(op, r.XA, r.YA)
		xb, yb := lin(op, r.XB, r.YB)
		return normRect(xa, ya, xb, yb)
	}
	for op := uint8(0); op < numOps; op++ {
		probeT := linRect(op, probe)
		for a := action.Action(0); a < action.NumActions; a++ {
			want := linRect(op, a.Apply(probe))
			found := false
			for b := action.Action(0); b < action.NumActions; b++ {
				if b.Apply(probeT) == want {
					conjTable[op][a] = b
					conjInvTable[op][b] = a
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("synth: action alphabet not closed under D4: no image for %v under op %d", a, op))
			}
		}
	}
}
