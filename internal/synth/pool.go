package synth

import (
	"runtime"
	"sync"

	"meda/internal/action"
	"meda/internal/route"
)

// Pool bounds the number of concurrently running synthesis jobs. The hybrid
// scheduler uses it to pre-synthesize the strategies for the next
// microfluidic operation's routing jobs while the current one executes
// (Alg. 3's synthesis step moved off the critical path).
//
// The pool is a counting semaphore rather than a set of resident worker
// goroutines: an idle pool holds no goroutines and needs no Close. All
// methods are safe for concurrent use.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool returns a pool running at most workers syntheses at once;
// workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Go runs fn on the pool, blocking the spawned goroutine (not the caller)
// until a worker slot is free.
func (p *Pool) Go(fn func()) {
	p.wg.Add(1)
	telPoolJobs.Inc()
	telPoolQueued.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		telPoolQueued.Add(-1)
		telPoolActive.Add(1)
		defer func() {
			telPoolActive.Add(-1)
			<-p.sem
		}()
		fn()
	}()
}

// TryGo runs fn on the pool only if a worker slot is immediately free,
// reporting whether it was started. Prefetch uses this: speculative work is
// only worth doing on otherwise-idle workers.
func (p *Pool) TryGo(fn func()) bool {
	select {
	case p.sem <- struct{}{}:
	default:
		return false
	}
	p.wg.Add(1)
	telPoolJobs.Inc()
	telPoolActive.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() {
			telPoolActive.Add(-1)
			<-p.sem
		}()
		fn()
	}()
	return true
}

// Wait blocks until every job accepted so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Future is the pending result of a submitted synthesis.
type Future struct {
	done chan struct{}
	res  Result
	err  error
}

// Wait blocks until the synthesis finishes and returns its result.
func (f *Future) Wait() (Result, error) {
	<-f.done
	return f.res, f.err
}

// Ready reports whether the result is available without blocking.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Submit schedules Synthesize(rj, field, opt) on the pool. The field must be
// safe to read from another goroutine — pass a snapshot (for example
// chip.SnapshotForceField), not a live chip accessor.
func (p *Pool) Submit(rj route.RJ, field action.ForceField, opt Options) *Future {
	f := &Future{done: make(chan struct{})}
	p.Go(func() {
		defer close(f.done)
		f.res, f.err = Synthesize(rj, field, opt)
	})
	return f
}
