//go:build !medacheck

package synth

import (
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/smg"
)

// assertReduced is a no-op in regular builds; the medacheck build tag swaps
// in full invariant verification of every reduced model and synthesized
// strategy (assert_medacheck.go).
func assertReduced(*smg.Model, mdp.Strategy, geom.Rect) {}
