// Package synth implements the routing-strategy synthesis procedure of
// Alg. 2: given a routing job and the current health matrix, it constructs
// the induced MDP (Sec. VI-C), forms the synthesis query, runs the
// probabilistic model checker, and extracts the droplet routing strategy
// π: Δ → A together with the query value (expected cycles for Rmin, success
// probability for Pmax). It also reports the model-size and timing
// statistics of Table V.
package synth

import (
	"fmt"
	"math"
	"sync"
	"time"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/spec"
	"meda/internal/telemetry"
)

// Options configures a synthesis run.
type Options struct {
	// Query is the synthesis query; the default is the paper's
	// reward-based routing query Rmin=? [ G !hazard & F goal ].
	Query spec.Query
	// Model configures the induced MDP (action alphabet, morphing, cost).
	Model smg.ModelOptions
	// Solver tunes value iteration.
	Solver mdp.SolveOptions
	// RetainModel keeps the induced model on Result.Model for inspection.
	// When false (the default), Result.Model is nil and the model's memory
	// is recycled through a pooled smg.Arena, cutting per-synthesis
	// allocations by orders of magnitude — the reason repeated synthesis
	// is cheap. Set it when the caller needs the model itself (invariant
	// checking, certification, export).
	RetainModel bool
}

// DefaultOptions returns the paper's synthesis configuration.
func DefaultOptions() Options {
	return Options{
		Query: spec.RoutingQuery(spec.RMin),
		Model: smg.DefaultModelOptions(),
	}
}

// Stats are the per-synthesis metrics reported in Table V.
type Stats struct {
	States      int
	Transitions int
	Choices     int
	// Construction is the time to build the model; Synthesis is the time
	// to check the query and extract the strategy; Total is their sum.
	Construction time.Duration
	Synthesis    time.Duration
	Iterations   int
}

// Total returns construction + synthesis time.
func (s Stats) Total() time.Duration { return s.Construction + s.Synthesis }

// Policy is a synthesized droplet routing strategy: the microfluidic action
// to issue for each droplet rectangle.
type Policy map[geom.Rect]action.Action

// Translate returns the policy shifted by (dx, dy), used by the offline
// strategy library to reuse a strategy synthesized at a canonical position.
func (p Policy) Translate(dx, dy int) Policy {
	out := make(Policy, len(p))
	for d, a := range p {
		out[d.Translate(dx, dy)] = a
	}
	return out
}

// Result is the outcome of Alg. 2.
type Result struct {
	// Policy is π, empty when no strategy exists.
	Policy Policy
	// Value is the query value at the job's start state: the expected
	// number of cycles k for Rmin queries (+Inf when no strategy exists),
	// or the maximum success probability for Pmax queries.
	Value float64
	// Stats carries Table V metrics.
	Stats Stats
	// Model retains the induced model for inspection; nil unless
	// Options.RetainModel was set (the model's memory is pooled otherwise).
	Model *smg.Model
}

// Exists reports whether a usable strategy was synthesized.
func (r Result) Exists() bool { return len(r.Policy) > 0 && !math.IsInf(r.Value, 1) }

// arenas recycles model-construction memory across syntheses. Each
// Synthesize call checks an arena out for its full duration (the induced
// model aliases the arena's slabs), so concurrent syntheses — e.g. Pool
// prefetch workers — each get their own arena; a warmed arena rebuilds a
// previously seen model size with O(1) allocations.
var arenas = sync.Pool{New: func() any { return new(smg.Arena) }}

// Synthesize runs Alg. 2 for one routing job under the given force field
// (derived from the current health matrix H). Dispense jobs must be
// normalized first (route.RJ.Start set on-chip); see NormalizeDispense.
func Synthesize(rj route.RJ, field action.ForceField, opt Options) (Result, error) {
	if rj.Start.IsZero() {
		return Result{}, fmt.Errorf("synth: %s has an off-chip start; normalize dispense jobs first", rj.Name())
	}
	sp := telemetry.StartSpan("synth.synthesize")
	defer sp.End()
	telSyntheses.Inc()
	var res Result

	ar := arenas.Get().(*smg.Arena)
	telArenaGets.Inc()
	if ar.Builds() > 0 {
		telArenaReuses.Inc()
	}
	if !opt.RetainModel {
		// The model dies with this call; its arena goes back to the pool.
		// (A retained model keeps its arena, which is simply not recycled.)
		defer arenas.Put(ar)
	}
	defer func() {
		telArenaReuseRatio.Set(float64(telArenaReuses.Value()) / float64(telArenaGets.Value()))
	}()

	t0 := time.Now()
	spb := sp.Child("synth.model_build")
	model, err := ar.Induce(rj.Hazard, rj.Start, rj.Goal, field, opt.Model)
	spb.End()
	if err != nil {
		return Result{}, fmt.Errorf("synth: %s: %w", rj.Name(), err)
	}
	res.Stats.Construction = time.Since(t0)
	res.Stats.States = model.M.NumStates()
	res.Stats.Transitions = model.M.NumTransitions()
	res.Stats.Choices = model.M.NumChoices()
	if opt.RetainModel {
		res.Model = model
	}
	telConstructNs.Add(res.Stats.Construction.Nanoseconds())
	telStates.Observe(float64(res.Stats.States))

	target, avoid, err := labelVectors(model, opt.Query)
	if err != nil {
		return Result{}, err
	}

	t1 := time.Now()
	sps := sp.Child("synth.solve")
	var solved mdp.Result
	switch opt.Query.Kind {
	case spec.RMin:
		solved, err = model.M.MinExpectedReward(target, avoid, opt.Solver)
	case spec.PMax:
		solved, err = model.M.MaxReachProb(target, avoid, opt.Solver)
	default:
		err = fmt.Errorf("synth: unsupported query kind %v", opt.Query.Kind)
	}
	sps.End()
	if err != nil {
		return Result{}, fmt.Errorf("synth: %s: %w", rj.Name(), err)
	}
	res.Stats.Synthesis = time.Since(t1)
	res.Stats.Iterations = solved.Iterations
	res.Value = solved.Values[model.Init]
	telSolveNs.Add(res.Stats.Synthesis.Nanoseconds())

	// PRISMG returns (∅, ∞) when no strategy exists (Alg. 2); mirror that.
	if opt.Query.Kind == spec.RMin && math.IsInf(res.Value, 1) {
		assertReduced(model, nil, rj.Hazard)
		return res, nil
	}
	if opt.Query.Kind == spec.PMax && mdp.IsZeroProb(res.Value) {
		assertReduced(model, nil, rj.Hazard)
		return res, nil
	}
	spe := sp.Child("synth.extract")
	res.Policy = Policy(model.Policy(solved.Strategy))
	spe.End()
	assertReduced(model, solved.Strategy, rj.Hazard)
	return res, nil
}

// labelVectors maps the query's label names onto the model's goal/hazard
// vectors; the routing model only defines these two labels.
func labelVectors(m *smg.Model, q spec.Query) (target, avoid []bool, err error) {
	switch q.Reach {
	case "goal":
		target = m.Goal
	case "hazard":
		target = m.Hazard
	default:
		return nil, nil, fmt.Errorf("synth: unknown reach label %q", q.Reach)
	}
	switch q.Avoid {
	case "":
		avoid = nil
	case "hazard":
		avoid = m.Hazard
	case "goal":
		avoid = m.Goal
	default:
		return nil, nil, fmt.Errorf("synth: unknown avoid label %q", q.Avoid)
	}
	return target, avoid, nil
}

// NormalizeDispense rewrites a dispense job so it can be synthesized and
// simulated: the droplet enters at the goal's nearest-edge projection and
// the hazard bounds grow to cover the entry (the paper generates dispense
// strategies as a movement perpendicular to the edge; routing from the edge
// projection reproduces exactly that).
func NormalizeDispense(rj route.RJ, w, h int) route.RJ {
	if !rj.Dispense || !rj.Start.IsZero() {
		return rj
	}
	entry := route.EntryRect(rj.Goal, w, h)
	rj.Start = entry
	rj.Hazard = route.Zone(entry, rj.Goal, w, h)
	return rj
}
