package synth

import (
	"math"
	"testing"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/route"
)

// TestTransformRoundTrip: Invert must undo Apply for every dihedral element
// on rectangles strictly inside the window.
func TestTransformRoundTrip(t *testing.T) {
	rects := []geom.Rect{
		rect(1, 1, 3, 3), rect(2, 5, 4, 6), rect(7, 2, 10, 4), rect(1, 7, 10, 7),
	}
	for op := uint8(0); op < numOps; op++ {
		tf := Transform{Op: op, X0: 1, Y0: 1, W: 10, H: 7}
		for _, r := range rects {
			got := tf.Invert(tf.Apply(r))
			if got != r {
				t.Errorf("op %d: round trip %v -> %v -> %v", op, r, tf.Apply(r), got)
			}
		}
	}
}

// TestTransformPreservesShapeArea: dihedral images keep area, and the
// canonical window contains every transformed rect that the original window
// contained.
func TestTransformStaysInWindow(t *testing.T) {
	win := rect(3, 4, 12, 8)
	inner := []geom.Rect{rect(3, 4, 5, 6), rect(10, 6, 12, 8), rect(3, 8, 12, 8)}
	for op := uint8(0); op < numOps; op++ {
		tf := Transform{Op: op, X0: win.XA, Y0: win.YA, W: win.Width(), H: win.Height()}
		w, h := tf.dims()
		cwin := rect(1, 1, w, h)
		for _, r := range inner {
			img := tf.Apply(r)
			if img.Area() != r.Area() {
				t.Errorf("op %d: area changed: %v -> %v", op, r, img)
			}
			if !cwin.ContainsRect(img) {
				t.Errorf("op %d: image %v of %v escapes canonical window %v", op, img, r, cwin)
			}
		}
	}
}

// TestCanonicalizeUnifiesSymmetryClass: every translated/rotated/reflected
// image of a job must canonicalize to the identical representative.
func TestCanonicalizeUnifiesSymmetryClass(t *testing.T) {
	base := route.RJ{
		Start:  rect(1, 1, 3, 3),
		Goal:   rect(9, 5, 11, 7),
		Hazard: rect(1, 1, 12, 8),
	}
	want, _ := Canonicalize(base)
	seen := 0
	for op := uint8(0); op < numOps; op++ {
		tf := Transform{Op: op, X0: base.Hazard.XA, Y0: base.Hazard.YA,
			W: base.Hazard.Width(), H: base.Hazard.Height()}
		img := route.RJ{Start: tf.Apply(base.Start), Goal: tf.Apply(base.Goal), Hazard: tf.Apply(base.Hazard)}
		for _, d := range []struct{ dx, dy int }{{0, 0}, {5, 3}, {17, 9}} {
			moved := route.RJ{
				Start:  img.Start.Translate(d.dx, d.dy),
				Goal:   img.Goal.Translate(d.dx, d.dy),
				Hazard: img.Hazard.Translate(d.dx, d.dy),
			}
			got, _ := Canonicalize(moved)
			if got.Start != want.Start || got.Goal != want.Goal || got.Hazard != want.Hazard {
				t.Fatalf("op %d shift %+v: canonical form %+v, want %+v", op, d, got, want)
			}
			seen++
		}
	}
	if seen != 24 {
		t.Fatalf("checked %d images, want 24", seen)
	}
}

// TestConjugationTables: conjugation must preserve action class, and the
// inverse table must invert the forward one for every dihedral element.
func TestConjugationTables(t *testing.T) {
	for op := uint8(0); op < numOps; op++ {
		for a := action.Action(0); a < action.NumActions; a++ {
			b := conjTable[op][a]
			if conjInvTable[op][b] != a {
				t.Fatalf("op %d: conjInv(conj(%v)) = %v", op, a, conjInvTable[op][b])
			}
			ca, cb := a.Class(), b.Class()
			swapped := op&opSwap != 0
			switch {
			case ca == action.Widen && swapped:
				if cb != action.Heighten {
					t.Fatalf("op %d: %v (widen) -> %v, want heighten", op, a, b)
				}
			case ca == action.Heighten && swapped:
				if cb != action.Widen {
					t.Fatalf("op %d: %v (heighten) -> %v, want widen", op, a, b)
				}
			default:
				if ca != cb {
					t.Fatalf("op %d: class changed %v -> %v", op, a, b)
				}
			}
		}
		if conjTable[0][action.MoveNE] != action.MoveNE {
			t.Fatal("identity op must fix every action")
		}
	}
}

// TestCanonicalSynthesisEquivalence is the soundness property behind the
// canonical strategy cache: synthesizing the canonical job on a uniform
// field and inverting the policy must give a strategy exactly as good as
// synthesizing the original job directly.
func TestCanonicalSynthesisEquivalence(t *testing.T) {
	worn := func(x, y int) float64 { return 0.64 }
	jobs := []route.RJ{
		{Start: rect(1, 1, 3, 3), Goal: rect(8, 6, 10, 8), Hazard: rect(1, 1, 10, 8)},
		{Start: rect(9, 2, 11, 4), Goal: rect(2, 2, 4, 4), Hazard: rect(1, 1, 12, 6)},
		{Start: rect(4, 9, 6, 11), Goal: rect(4, 2, 6, 4), Hazard: rect(3, 1, 8, 12)},
	}
	for _, rj := range jobs {
		direct, err := Synthesize(rj, worn, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		crj, tf := Canonicalize(rj)
		canon, err := Synthesize(crj, worn, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct.Value-canon.Value) > 1e-6 {
			t.Fatalf("%v: value %v direct vs %v canonical", rj, direct.Value, canon.Value)
		}
		// The inverted canonical policy must be executable and optimal:
		// every droplet position it covers must pick an action the direct
		// synthesis considers optimal too. Tie-breaking can differ, so
		// compare reachable-policy sizes and spot-check the start action's
		// effect rather than demanding identical maps.
		inv := tf.InvertPolicy(canon.Policy)
		if len(inv) != len(direct.Policy) {
			t.Fatalf("%v: policy sizes differ: %d inverted vs %d direct", rj, len(inv), len(direct.Policy))
		}
		for d := range direct.Policy {
			if _, ok := inv[d]; !ok {
				t.Fatalf("%v: inverted policy missing droplet %v", rj, d)
			}
		}
		if _, ok := inv[rj.Start]; !ok {
			t.Fatalf("%v: inverted policy missing the start position", rj)
		}
	}
}
