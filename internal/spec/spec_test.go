package spec

import "testing"

func TestParseCanonicalQueries(t *testing.T) {
	cases := []struct {
		in   string
		want Query
	}{
		{"Rmin=? [ G !hazard & F goal ]", Query{Kind: RMin, Avoid: "hazard", Reach: "goal"}},
		{"Pmax=? [ G !hazard & F goal ]", Query{Kind: PMax, Avoid: "hazard", Reach: "goal"}},
		{"Pmax=? [ F goal ]", Query{Kind: PMax, Reach: "goal"}},
		{"Rmin=?[G !hazard & F goal]", Query{Kind: RMin, Avoid: "hazard", Reach: "goal"}},
		{"Pmax=? [ [] !hazard & <> goal ]", Query{Kind: PMax, Avoid: "hazard", Reach: "goal"}},
		{"Pmax=? [ F goal & G !hazard ]", Query{Kind: PMax, Avoid: "hazard", Reach: "goal"}},
		{"Rmin=? [ F done ]", Query{Kind: RMin, Reach: "done"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Pmin=? [ F goal ]",               // unsupported operator
		"Rmax=? [ F goal ]",               // unsupported operator
		"Qmax=? [ F goal ]",               // unknown operator
		"Pmax=? [ G !hazard ]",            // no reachability unit
		"Pmax=? [ F goal & F other ]",     // two reachability units
		"Pmax=? [ G !a & G !b & F goal ]", // two safety units
		"Pmax=? [ G hazard & F goal ]",    // safety without negation
		"Pmax=? [ F goal ] extra",         // trailing input
		"Pmax=? F goal",                   // missing brackets
		"Pmax [ F goal ]",                 // missing =?
		"Pmax=? [ F goal",                 // unclosed bracket
		"Pmax=? [ F ]",                    // missing label
		"Pmax=? [ @ ]",                    // bad character
		"Pmax=? [ goal ]",                 // bare label without operator
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	qs := []Query{
		{Kind: RMin, Avoid: "hazard", Reach: "goal"},
		{Kind: PMax, Avoid: "hazard", Reach: "goal"},
		{Kind: PMax, Reach: "goal"},
	}
	for _, q := range qs {
		again, err := Parse(q.String())
		if err != nil {
			t.Errorf("round trip %q: %v", q.String(), err)
			continue
		}
		if again != q {
			t.Errorf("round trip %q = %+v, want %+v", q.String(), again, q)
		}
	}
}

func TestRoutingQuery(t *testing.T) {
	q := RoutingQuery(RMin)
	if q.String() != "Rmin=? [ G !hazard & F goal ]" {
		t.Errorf("RoutingQuery = %q", q.String())
	}
	q = RoutingQuery(PMax)
	if q.Avoid != "hazard" || q.Reach != "goal" || q.Kind != PMax {
		t.Errorf("RoutingQuery(PMax) = %+v", q)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("nonsense")
}

func TestKindString(t *testing.T) {
	if PMax.String() != "Pmax" || RMin.String() != "Rmin" {
		t.Error("kind names wrong")
	}
}
