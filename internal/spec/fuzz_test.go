package spec

import "testing"

// FuzzParse feeds arbitrary text to the query parser: it must never panic,
// and every accepted query must round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("Rmin=? [ G !hazard & F goal ]")
	f.Add("Pmax=? [ F goal ]")
	f.Add("Pmax=? [ [] !a & <> b ]")
	f.Add("=?[]")
	f.Add("Rmin")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("accepted query %q does not re-parse: %v", q.String(), err)
		}
		if again != q {
			t.Fatalf("round trip changed query: %+v vs %+v", again, q)
		}
	})
}
