package spec

import "testing"

// FuzzParse feeds arbitrary text to the query parser: it must never panic,
// and every accepted query must round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("Rmin=? [ G !hazard & F goal ]")
	f.Add("Pmax=? [ F goal ]")
	f.Add("Pmax=? [ [] !a & <> b ]")
	f.Add("Rmin=? [ F goal & G !hazard ]")
	f.Add("Pmax=?[F goal]")
	f.Add("Rmin=? [ G ! hazard & F goal ] trailing")
	f.Add("=?[]")
	f.Add("Rmin")
	f.Add("Rmin=? [ G !G & F F ]")
	f.Add("Pmax=? [ <> <> x ]")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("accepted query %q does not re-parse: %v", q.String(), err)
		}
		if again != q {
			t.Fatalf("round trip changed query: %+v vs %+v", again, q)
		}
	})
}

// plainIdent reports whether s is a label the grammar can express: a
// nonempty identifier that does not collide with the G/F operator words.
func plainIdent(s string) bool {
	if s == "" || s == "G" || s == "F" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// FuzzQueryString drives the printer with arbitrary label names: String
// must never panic, and whenever the labels are expressible in the grammar
// the rendered text must parse back to the same query. This is the inverse
// direction of FuzzParse — it finds printer bugs (missing spaces, operator
// collisions) that parser-only fuzzing cannot reach.
func FuzzQueryString(f *testing.F) {
	f.Add(true, "hazard", "goal")
	f.Add(false, "", "goal")
	f.Add(true, "a_1", "B2")
	f.Add(false, "G", "F")
	f.Fuzz(func(t *testing.T, rmin bool, avoid, reach string) {
		q := Query{Kind: PMax, Avoid: avoid, Reach: reach}
		if rmin {
			q.Kind = RMin
		}
		s := q.String() // must never panic, whatever the labels
		if !plainIdent(reach) || (avoid != "" && !plainIdent(avoid)) {
			return
		}
		again, err := Parse(s)
		if err != nil {
			t.Fatalf("rendered query %q does not parse: %v", s, err)
		}
		if again != q {
			t.Fatalf("print/parse round trip changed query: %+v vs %+v", again, q)
		}
	})
}
