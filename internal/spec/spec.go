// Package spec implements the property language used by the synthesis
// queries of Sec. VI-C, a fragment of PRISM's probabilistic temporal logic
// sufficient for droplet routing:
//
//	Pmax=? [ G !hazard & F goal ]   — maximize the probability of
//	                                  satisfying □(¬hazard) ∧ ◇goal
//	Rmin=? [ G !hazard & F goal ]   — minimize the expected number of
//	                                  cycles while satisfying it
//
// Formulas are conjunctions of at most one safety unit G !label (also
// written [] !label) and exactly one reachability unit F label (also <>
// label). Labels are the paper's state labels: propositional formulas over
// the droplet position evaluated by the model layer (goal and hazard in
// Alg. 2); this package treats them as opaque names.
package spec

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two query types of Sec. VI-C.
type Kind int

const (
	// PMax is the probabilistic query Pmax=? (maximize satisfaction
	// probability).
	PMax Kind = iota
	// RMin is the reward-based query Rmin=? (minimize expected
	// accumulated reward, i.e. cycles).
	RMin
)

// String returns the PRISM operator name.
func (k Kind) String() string {
	if k == RMin {
		return "Rmin"
	}
	return "Pmax"
}

// Query is a parsed synthesis query.
type Query struct {
	Kind Kind
	// Avoid is the label of states that must never be entered (the G !x
	// unit); empty when the formula has no safety conjunct.
	Avoid string
	// Reach is the label of states to eventually reach (the F x unit).
	Reach string
}

// String renders the query in PRISM syntax.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString(q.Kind.String())
	b.WriteString("=? [ ")
	if q.Avoid != "" {
		fmt.Fprintf(&b, "G !%s & ", q.Avoid)
	}
	fmt.Fprintf(&b, "F %s ]", q.Reach)
	return b.String()
}

// RoutingQuery returns the paper's routing property for the given kind:
// kind=? [ G !hazard & F goal ].
func RoutingQuery(kind Kind) Query {
	return Query{Kind: kind, Avoid: "hazard", Reach: "goal"}
}

// Parse parses a query string such as
//
//	"Rmin=? [ G !hazard & F goal ]"
//	"Pmax=? [ [] !hazard & <> goal ]"
//	"Pmax=? [ F goal ]"
//
// G/[] and F/<> are interchangeable; the conjuncts may appear in either
// order; label names are alphanumeric identifiers.
func Parse(s string) (Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Query{}, err
	}
	p := parser{toks: toks}
	return p.parseQuery()
}

// MustParse is Parse for programmer-literal queries; it panics on error.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	kind string // "ident", "op"
	text string
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '[' && i+1 < len(s) && s[i+1] == ']':
			toks = append(toks, token{"op", "G"})
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, token{"op", "F"})
			i += 2
		case c == '=' && i+1 < len(s) && s[i+1] == '?':
			toks = append(toks, token{"op", "=?"})
			i += 2
		case c == '[' || c == ']' || c == '!' || c == '&':
			toks = append(toks, token{"op", string(c)})
			i++
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			word := s[i:j]
			switch word {
			case "G", "F":
				toks = append(toks, token{"op", word})
			default:
				toks = append(toks, token{"ident", word})
			}
			i = j
		default:
			return nil, fmt.Errorf("spec: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expectOp(text string) error {
	t, ok := p.next()
	if !ok || t.kind != "op" || t.text != text {
		return fmt.Errorf("spec: expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t, ok := p.next()
	if !ok || t.kind != "ident" {
		return "", fmt.Errorf("spec: expected label name, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) parseQuery() (Query, error) {
	head, err := p.expectIdent()
	if err != nil {
		return Query{}, err
	}
	var q Query
	switch head {
	case "Pmax":
		q.Kind = PMax
	case "Rmin":
		q.Kind = RMin
	case "Pmin", "Rmax":
		return Query{}, fmt.Errorf("spec: %s queries are not used by the routing framework", head)
	default:
		return Query{}, fmt.Errorf("spec: unknown query operator %q", head)
	}
	if err := p.expectOp("=?"); err != nil {
		return Query{}, err
	}
	if err := p.expectOp("["); err != nil {
		return Query{}, err
	}
	if err := p.parseFormula(&q); err != nil {
		return Query{}, err
	}
	if err := p.expectOp("]"); err != nil {
		return Query{}, err
	}
	if t, ok := p.peek(); ok {
		return Query{}, fmt.Errorf("spec: trailing input %q", t.text)
	}
	if q.Reach == "" {
		return Query{}, fmt.Errorf("spec: formula must contain a reachability unit F <label>")
	}
	return q, nil
}

func (p *parser) parseFormula(q *Query) error {
	for {
		if err := p.parseUnit(q); err != nil {
			return err
		}
		t, ok := p.peek()
		if !ok || t.kind != "op" || t.text != "&" {
			return nil
		}
		p.pos++ // consume &
	}
}

func (p *parser) parseUnit(q *Query) error {
	t, ok := p.next()
	if !ok || t.kind != "op" {
		return fmt.Errorf("spec: expected temporal operator, got %q", t.text)
	}
	switch t.text {
	case "G":
		if err := p.expectOp("!"); err != nil {
			return fmt.Errorf("spec: the safety unit must have the form G !<label>: %w", err)
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if q.Avoid != "" {
			return fmt.Errorf("spec: multiple safety units")
		}
		q.Avoid = name
		return nil
	case "F":
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if q.Reach != "" {
			return fmt.Errorf("spec: multiple reachability units")
		}
		q.Reach = name
		return nil
	default:
		return fmt.Errorf("spec: unexpected operator %q", t.text)
	}
}
