package mdp

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func exportModel() (*MDP, []bool) {
	m := New()
	s0 := m.AddState()
	s1 := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 1, 1, []Transition{{To: s1, P: 0.5}, {To: s0, P: 0.5}})
	m.AddChoice(s0, 2, 1, []Transition{{To: goal, P: 0.25}, {To: s0, P: 0.75}})
	m.AddChoice(s1, 3, 1, []Transition{{To: goal, P: 1}})
	m.AddChoice(goal, 0, 0, []Transition{{To: goal, P: 1}})
	target := []bool{false, false, true}
	return m, target
}

func TestWriteTraFormat(t *testing.T) {
	m, _ := exportModel()
	var buf bytes.Buffer
	if err := m.WriteTra(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "3 4 6" {
		t.Errorf("header = %q, want \"3 4 6\"", lines[0])
	}
	if len(lines) != 1+6 {
		t.Fatalf("lines = %d, want 7", len(lines))
	}
	// Every body line: state choice target prob action; probabilities of
	// a (state, choice) group sum to 1.
	sums := map[string]float64{}
	for _, l := range lines[1:] {
		f := strings.Fields(l)
		if len(f) != 5 {
			t.Fatalf("bad line %q", l)
		}
		p, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		sums[f[0]+":"+f[1]] += p
		if !strings.HasPrefix(f[4], "a") {
			t.Errorf("action field %q", f[4])
		}
	}
	for k, s := range sums {
		if s < 0.999999 || s > 1.000001 {
			t.Errorf("choice %s probabilities sum to %v", k, s)
		}
	}
}

func TestWriteTrewMatchesShape(t *testing.T) {
	m, _ := exportModel()
	var tra, trew bytes.Buffer
	if err := m.WriteTra(&tra); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteTrew(&trew); err != nil {
		t.Fatal(err)
	}
	traLines := strings.Split(strings.TrimSpace(tra.String()), "\n")
	trewLines := strings.Split(strings.TrimSpace(trew.String()), "\n")
	if len(traLines) != len(trewLines) {
		t.Fatalf("tra %d lines vs trew %d", len(traLines), len(trewLines))
	}
	// Rewards of the three unit-cost choices are 1; the goal self-loop 0.
	sc := bufio.NewScanner(strings.NewReader(trew.String()))
	sc.Scan() // header
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		r, _ := strconv.ParseFloat(f[3], 64)
		if f[0] == "2" && r != 0 {
			t.Errorf("goal self-loop reward = %v", r)
		}
		if f[0] != "2" && r != 1 {
			t.Errorf("action reward = %v", r)
		}
	}
}

func TestWriteLab(t *testing.T) {
	m, target := exportModel()
	hazard := []bool{false, true, false}
	var buf bytes.Buffer
	err := m.WriteLab(&buf, 0, map[string][]bool{"goal": target, "hazard": hazard})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != `0="init" 1="goal" 2="hazard"` {
		t.Errorf("header = %q", lines[0])
	}
	want := map[string]bool{"0: 0": true, "1: 2": true, "2: 1": true}
	for _, l := range lines[1:] {
		if !want[l] {
			t.Errorf("unexpected label line %q", l)
		}
		delete(want, l)
	}
	if len(want) != 0 {
		t.Errorf("missing label lines: %v", want)
	}
}

func TestWriteLabRejectsBadVector(t *testing.T) {
	m, _ := exportModel()
	var buf bytes.Buffer
	if err := m.WriteLab(&buf, 0, map[string][]bool{"goal": {true}}); err == nil {
		t.Error("short label vector accepted")
	}
}

// TestExportedModelSolvesIdentically re-imports the .tra text and re-solves,
// checking the round trip preserves the optimal values.
func TestExportedModelSolvesIdentically(t *testing.T) {
	m, target := exportModel()
	want, err := m.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteTra(&buf); err != nil {
		t.Fatal(err)
	}
	// Parse the body back into a fresh MDP (rewards: 1 per non-goal
	// choice, matching the original).
	re := New()
	re.AddStates(m.NumStates())
	type key struct{ s, c int }
	groups := map[key][]Transition{}
	acts := map[key]int{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	sc.Scan()
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		s, _ := strconv.Atoi(f[0])
		c, _ := strconv.Atoi(f[1])
		to, _ := strconv.Atoi(f[2])
		p, _ := strconv.ParseFloat(f[3], 64)
		a, _ := strconv.Atoi(strings.TrimPrefix(f[4], "a"))
		groups[key{s, c}] = append(groups[key{s, c}], Transition{To: StateID(to), P: p})
		acts[key{s, c}] = a
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Insert in deterministic order.
	for s := 0; s < m.NumStates(); s++ {
		for c := 0; c < 4; c++ {
			k := key{s, c}
			trs, ok := groups[k]
			if !ok {
				continue
			}
			reward := 1.0
			if target[s] {
				reward = 0
			}
			re.AddChoice(StateID(s), acts[k], reward, trs)
		}
	}
	_ = keys
	got, err := re.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range want.Values {
		if d := want.Values[s] - got.Values[s]; d > 1e-9 || d < -1e-9 {
			t.Errorf("state %d: %v vs %v", s, want.Values[s], got.Values[s])
		}
	}
}
