package mdp

import (
	"math"
	"testing"
)

// buildVia constructs the same three-state model through either the
// list-backed API or the Builder, so the two storage modes can be compared
// like for like.
func listModel() *MDP {
	m := New()
	m.AddStates(3)
	m.AddChoice(0, 7, 1, []Transition{{To: 1, P: 0.5}, {To: 0, P: 0.5}})
	m.AddChoice(0, 8, 2, []Transition{{To: 2, P: 1}})
	m.AddChoice(1, 9, 1, []Transition{{To: 2, P: 1}})
	m.AddChoice(2, -1, 0, []Transition{{To: 2, P: 1}})
	return m
}

func builderModel(b *Builder) *MDP {
	b.Reset()
	b.AddStates(3)
	b.BeginChoice(0, 7, 1)
	b.Transition(1, 0.5)
	b.Transition(0, 0.5)
	b.BeginChoice(0, 8, 2)
	b.Transition(2, 1)
	b.BeginChoice(1, 9, 1)
	b.Transition(2, 1)
	b.BeginChoice(2, -1, 0)
	b.Transition(2, 1)
	return b.Build()
}

func TestBuilderMatchesListBacked(t *testing.T) {
	lm := listModel()
	var b Builder
	bm := builderModel(&b)
	if bm.NumStates() != lm.NumStates() || bm.NumChoices() != lm.NumChoices() ||
		bm.NumTransitions() != lm.NumTransitions() {
		t.Fatalf("size mismatch: %d/%d/%d vs %d/%d/%d",
			bm.NumStates(), bm.NumChoices(), bm.NumTransitions(),
			lm.NumStates(), lm.NumChoices(), lm.NumTransitions())
	}
	if err := bm.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := StateID(0); int(s) < lm.NumStates(); s++ {
		lc, bc := lm.Choices(s), bm.Choices(s)
		if len(lc) != len(bc) {
			t.Fatalf("state %d: %d vs %d choices", s, len(lc), len(bc))
		}
		for i := range lc {
			if lc[i].Action != bc[i].Action || lc[i].Reward != bc[i].Reward ||
				len(lc[i].Transitions) != len(bc[i].Transitions) {
				t.Fatalf("state %d choice %d differs: %+v vs %+v", s, i, lc[i], bc[i])
			}
		}
	}
	target := []bool{false, false, true}
	rl, err := lm.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bm.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range rl.Values {
		if math.Abs(rl.Values[s]-rb.Values[s]) > 1e-9 {
			t.Fatalf("state %d: %v (list) vs %v (builder)", s, rl.Values[s], rb.Values[s])
		}
	}
}

// TestBuilderResetRecycles rebuilds through the same Builder and checks the
// second build is correct and allocation-free once the slabs are warm.
func TestBuilderResetRecycles(t *testing.T) {
	var b Builder
	builderModel(&b)
	allocs := testing.AllocsPerRun(10, func() {
		m := builderModel(&b)
		if m.NumStates() != 3 {
			t.Fatal("rebuild lost states")
		}
	})
	// One allocation per build is the *MDP header itself.
	if allocs > 2 {
		t.Fatalf("warm rebuild allocates %v times per run; want ≤ 2", allocs)
	}
	// Solving after a rebuild must still work (scratch slabs recycled too).
	m := builderModel(&b)
	r, err := m.MinExpectedReward([]bool{false, false, true}, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(r.Values[0], 1) {
		t.Fatal("value at state 0 must be finite")
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	var b Builder
	b.Reset()
	b.AddStates(2)
	b.BeginChoice(1, 0, 0)
	b.Transition(0, 1)
	expectPanic("out-of-order state", func() { b.BeginChoice(0, 0, 0) })

	var b2 Builder
	b2.Reset()
	b2.AddStates(1)
	b2.BeginChoice(0, 0, 0)
	b2.Transition(0, 1)
	m := b2.Build()
	expectPanic("mutate built model", func() { m.AddState() })
	expectPanic("double build", func() { b2.Build() })
	expectPanic("choice after build", func() { b2.BeginChoice(0, 0, 0) })

	var b3 Builder
	b3.Reset()
	expectPanic("unreserved state", func() { b3.BeginChoice(5, 0, 0) })
}
