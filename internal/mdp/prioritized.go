// Prioritized-sweeping value iteration. Sweep-based solvers recompute every
// state each round even when most of the value function has already settled;
// on the goal-directed routing models the useful work is a wavefront that
// expands backward from the goal, and everything behind the front is wasted
// backups. This solver keeps an indexed max-heap of states ordered by their
// proximity to the goal in value space (smallest expected cost first for
// Rmin, largest reach probability first for Pmax — Dijkstra's order, which
// is optimal when the model is acyclic from the goal and near-optimal on the
// routing models' local 2-cycles): it is seeded with the predecessors of the
// frozen (goal/pinned) states over the reverse-edge index, and whenever a
// popped state's value changes by d ≥ eps, its predecessors are pushed at
// the popped state's new value. Values update in place (Gauss-Seidel style),
// so each backup sees the freshest successors, and the backups use the
// self-loop-eliminated Bellman forms (bellmanMaxSL/bellmanMinSL) so a
// state's value settles in one backup once its non-loop successors have —
// without that, each ε self-loop would need a geometric tail of sweeps to
// contract away, defeating the one-touch wavefront.
//
// Draining the queue alone does not certify convergence — a state whose
// successors each moved by less than eps can still be stale — so on drain a
// full verification sweep recomputes every non-frozen state; if any residual
// reaches eps the affected predecessors are re-queued and draining resumes.
// The solver therefore returns only after one full sweep with max-norm
// residual below eps: exactly the Gauss-Seidel convergence criterion, which
// is what keeps it interchangeable in the solver differential tests.
package mdp

import "math"

// heapState bundles the indexed-max-heap scratch: heap holds state ids
// ordered by pri (ties broken toward the smaller id, so pop order and hence
// the whole solve is deterministic), and pos maps a state id to its heap
// slot (-1 when absent).
type heapState struct {
	heap []int32
	pri  []float64
	pos  []int32
}

func (h *heapState) above(a, b int32) bool {
	if h.pri[a] > h.pri[b] {
		return true
	}
	if h.pri[a] < h.pri[b] {
		return false
	}
	return a < b
}

func (h *heapState) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *heapState) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.above(h.heap[i], h.heap[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heapState) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.above(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < len(h.heap) && h.above(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// push inserts s with priority p, or raises its priority if s is already
// queued lower. A raise means one of s's successors settled at a value
// nearer the goal than the successor that first queued s, so s's own value
// is bounded by the new trigger and should be processed accordingly sooner;
// lowering is never done (the earlier, tighter bound stays).
func (h *heapState) push(s int32, p float64) {
	if i := h.pos[s]; i >= 0 {
		if p > h.pri[s] {
			h.pri[s] = p
			h.siftUp(int(i))
		}
		return
	}
	h.pri[s] = p
	h.pos[s] = int32(len(h.heap))
	h.heap = append(h.heap, s)
	h.siftUp(len(h.heap) - 1)
}

// pop removes and returns the highest-priority state.
func (h *heapState) pop() int32 {
	s := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[s] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return s
}

// residual is |v - old| with the convention that an unchanged infinity has
// residual 0: Inf-Inf is NaN (the only NaN source here, since values are
// otherwise finite), which would poison the heap order.
func residual(v, old float64) float64 {
	d := math.Abs(v - old)
	if math.IsNaN(d) {
		return 0
	}
	return d
}

// prioritizedIterate runs prioritized-sweeping value iteration in place over
// vals. sign orients the processing order: states are popped in order of
// sign·value, so Rmin (sign −1, values grow from the goal outward) processes
// the smallest-valued state first and Pmax (sign +1, probabilities shrink
// from the goal outward) the largest — in both cases the state nearest the
// goal, Dijkstra-fashion, so a backup runs only after the successors it
// depends on have (almost) settled. The residual gates *whether* a
// predecessor is queued at all; the value orders *when* it runs.
//
// It reports the number of equivalent full sweeps (total backups divided by
// the state count, plus the verification sweeps) so iteration telemetry
// stays comparable across methods, and the final verification residual.
func (g *csr) prioritizedIterate(vals []float64, frozen []bool, opt SolveOptions, sign float64,
	bellman func(s int, src []float64) float64) (int, float64, error) {
	n := g.n
	if n == 0 {
		return 1, 0, nil
	}
	g.reverseIndex()
	h := heapState{
		heap: growI(g.scrHeap, n)[:0],
		pri:  growF(g.scrPri, n),
		pos:  growI(g.scrHPos, n),
	}
	for s := 0; s < n; s++ {
		h.pos[s] = -1
	}
	defer func() {
		g.scrHeap = h.heap[:0]
		g.scrPri = h.pri
		g.scrHPos = h.pos
	}()

	// pushPreds queues every state with a choice that has a positive-
	// probability edge into t at t's current value: their Bellman values
	// depend on vals[t], and t's value bounds theirs.
	pushPreds := func(t int32) {
		p := sign * vals[t]
		for ri := g.revOff[t]; ri < g.revOff[t+1]; ri++ {
			s := g.choiceState[g.revChoice[ri]]
			if !frozen[s] {
				h.push(s, p)
			}
		}
	}
	// Seed backward from the pinned states: the goal (and, for Rmin, the
	// +Inf non-almost-sure set) is where the value function's boundary
	// conditions live, so their predecessors are where the first nonzero
	// residuals appear. Anything the wavefront misses is caught by the
	// verification sweep below.
	for s := 0; s < n; s++ {
		if frozen[s] {
			pushPreds(int32(s))
		}
	}

	backups := 0
	maxBackups := opt.MaxIter * n
	sweeps := 0
	for {
		for len(h.heap) > 0 {
			s := h.pop()
			v := bellman(int(s), vals)
			d := residual(v, vals[s])
			vals[s] = v
			backups++
			if d >= opt.Eps {
				pushPreds(s)
			}
			if backups > maxBackups {
				telPrioBackups.Add(int64(backups))
				return sweeps + backups/n, d, g.convergenceError(int(s), d, opt.MaxIter)
			}
		}
		// Verification sweep: recompute everything in place; re-queue the
		// predecessors of any state that still moved.
		delta, worst := 0.0, -1
		for s := 0; s < n; s++ {
			if frozen[s] {
				continue
			}
			v := bellman(s, vals)
			d := residual(v, vals[s])
			vals[s] = v
			backups++
			if d > delta {
				delta, worst = d, s
			}
			if d >= opt.Eps {
				pushPreds(int32(s))
			}
		}
		sweeps++
		if delta < opt.Eps {
			telPrioBackups.Add(int64(backups))
			return sweeps + backups/n, delta, nil
		}
		if sweeps >= opt.MaxIter || backups > maxBackups {
			telPrioBackups.Add(int64(backups))
			return sweeps + backups/n, delta, g.convergenceError(worst, delta, opt.MaxIter)
		}
	}
}
