package mdp

import (
	"math"
	"testing"

	"meda/internal/randx"
)

// TestPolicyEvaluationMatchesOptimum: evaluating the optimal strategy
// reproduces the optimal values, for both objectives.
func TestPolicyEvaluationMatchesOptimum(t *testing.T) {
	src := randx.New(61)
	for trial := 0; trial < 10; trial++ {
		m, target := randomMDP(src.SplitN("t", trial), 35, 3)
		opt, err := m.MinExpectedReward(target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		vals, err := m.EvaluatePolicyReward(opt.Strategy, target, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for s := range vals {
			if math.IsInf(opt.Values[s], 1) != math.IsInf(vals[s], 1) {
				t.Fatalf("trial %d state %d: finiteness mismatch", trial, s)
			}
			if !math.IsInf(vals[s], 1) && math.Abs(vals[s]-opt.Values[s]) > 1e-5 {
				t.Fatalf("trial %d state %d: %v vs optimal %v", trial, s, vals[s], opt.Values[s])
			}
		}
		popt, err := m.MaxReachProb(target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pvals, err := m.EvaluatePolicyReach(popt.Strategy, target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for s := range pvals {
			if math.Abs(pvals[s]-popt.Values[s]) > 1e-5 {
				t.Fatalf("trial %d state %d: reach %v vs optimal %v", trial, s, pvals[s], popt.Values[s])
			}
		}
	}
}

// TestSuboptimalPolicyIsWorse: forcing the detour in the two-choice model
// evaluates to its true (worse) cost.
func TestSuboptimalPolicyIsWorse(t *testing.T) {
	m := New()
	s0 := m.AddState()
	a := m.AddState()
	b := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: a, P: 1}}) // detour: 3 steps
	m.AddChoice(a, 0, 1, []Transition{{To: b, P: 1}})
	m.AddChoice(b, 0, 1, []Transition{{To: goal, P: 1}})
	m.AddChoice(s0, 1, 1, []Transition{{To: goal, P: 0.5}, {To: s0, P: 0.5}}) // expected 2
	target := []bool{false, false, false, true}

	detour := Strategy{0, 0, 0, -1}
	vals, err := m.EvaluatePolicyReward(detour, target, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[s0]-3) > 1e-9 {
		t.Errorf("detour cost = %v, want 3", vals[s0])
	}
	risky := Strategy{1, 0, 0, -1}
	vals, err = m.EvaluatePolicyReward(risky, target, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[s0]-2) > 1e-6 {
		t.Errorf("risky cost = %v, want 2", vals[s0])
	}
}

// TestPolicyIntoTrapIsInfinite: a policy that walks into an absorbing
// non-target state evaluates to +Inf (reward) and its true probability
// (reach).
func TestPolicyIntoTrapIsInfinite(t *testing.T) {
	m := New()
	s0 := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: trap, P: 0.5}, {To: goal, P: 0.5}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	target := []bool{false, false, true}
	st := Strategy{0, 0, -1}
	vals, err := m.EvaluatePolicyReward(st, target, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(vals[s0], 1) {
		t.Errorf("reward through a trap = %v, want +Inf", vals[s0])
	}
	pvals, err := m.EvaluatePolicyReach(st, target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pvals[s0]-0.5) > 1e-9 {
		t.Errorf("reach through a trap = %v, want 0.5", pvals[s0])
	}
}

func TestPolicyEvaluationVectorMismatch(t *testing.T) {
	m := chainMDP(3)
	if _, err := m.EvaluatePolicyReward(Strategy{0}, labelLast(3), SolveOptions{}); err == nil {
		t.Error("short strategy accepted")
	}
	if _, err := m.EvaluatePolicyReach(Strategy{0, 0, -1}, []bool{true}, nil, SolveOptions{}); err == nil {
		t.Error("short target accepted")
	}
}
