package mdp

import "math"

// Floating-point comparison helpers shared across the synthesis stack.
// Probabilities, force values and value-iteration results are float64
// everywhere, and the medalint floatcmp analyzer rejects raw ==/!= on them:
// two mathematically equal quantities computed along different paths rarely
// compare equal in binary64. All tolerance and sentinel comparisons go
// through the helpers below, so the tolerances are named, auditable, and in
// one place.

// Eps is the default convergence tolerance of the value-iteration solvers
// and the stochasticity tolerance of model validation.
const Eps = 1e-9

// ApproxEqual reports |a−b| ≤ eps, treating equal infinities as equal
// (value vectors legitimately carry +Inf for unreachable states).
func ApproxEqual(a, b, eps float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps
}

// IsZero reports x == 0 exactly. It exists for sentinel checks — values
// that are zero by construction (never actuated, pinned by the solver, a
// degenerate variance) rather than zero by accumulation — and signals that
// the exactness is intentional.
func IsZero(x float64) bool { return x == 0 }

// IsZeroProb reports whether a probability is exactly 0. Transition
// probabilities are 0 only by construction (an outcome the force model
// rules out, a solver-pinned losing state), so the exact test is correct
// where an accumulated value would need ApproxEqual.
func IsZeroProb(p float64) bool { return p == 0 }

// IsOneProb reports whether a probability is exactly 1, the
// by-construction counterpart of IsZeroProb.
func IsOneProb(p float64) bool { return p == 1 }
