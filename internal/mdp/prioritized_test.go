package mdp

import (
	"math"
	"testing"
)

// wavefrontMDP builds a chain-like model shaped like the routing models'
// value structure: state 0 is the target, and every other state has one or
// two noisy choices stepping toward it, each with a self-loop remainder.
func wavefrontMDP(n int) (*MDP, []bool) {
	m := New()
	m.AddStates(n)
	for s := 1; s < n; s++ {
		m.AddChoice(StateID(s), 0, 1, []Transition{
			{To: StateID(s - 1), P: 0.8}, {To: StateID(s), P: 0.2},
		})
		if s >= 2 {
			m.AddChoice(StateID(s), 1, 1, []Transition{
				{To: StateID(s - 2), P: 0.6}, {To: StateID(s), P: 0.4},
			})
		}
	}
	m.AddChoice(0, -1, 0, []Transition{{To: 0, P: 1}})
	target := make([]bool, n)
	target[0] = true
	return m, target
}

// TestPrioritizedMatchesGaussSeidel solves the wavefront model with both
// methods through the public API and requires identical values and strategy
// quality.
func TestPrioritizedMatchesGaussSeidel(t *testing.T) {
	const n = 1000
	m, target := wavefrontMDP(n)
	rg, err := m.MinExpectedReward(target, nil, SolveOptions{Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := m.MinExpectedReward(target, nil, SolveOptions{Method: Prioritized})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		if math.Abs(rg.Values[s]-rp.Values[s]) > 1e-6 {
			t.Fatalf("state %d: %v (GS) vs %v (prioritized)", s, rg.Values[s], rp.Values[s])
		}
	}
	if _, ok := rp.Strategy.Action(m, n-1); !ok {
		t.Fatal("prioritized strategy selects nothing at the far end")
	}
}

// TestPrioritizedBackupEconomy is the reason the solver exists: on the
// wavefront model the prioritized method must converge in a small constant
// number of backups per state, where plain sweeps spend hundreds (the
// self-loop contraction tail). The bound is deliberately loose — a factor
// of a few over the ~3n observed — so it fails only if the ordering or the
// self-loop elimination regresses.
func TestPrioritizedBackupEconomy(t *testing.T) {
	const n = 1000
	m, target := wavefrontMDP(n)
	before := telPrioBackups.Value()
	if _, err := m.MinExpectedReward(target, nil, SolveOptions{Method: Prioritized}); err != nil {
		t.Fatal(err)
	}
	backups := telPrioBackups.Value() - before
	if backups > 10*n {
		t.Fatalf("prioritized spent %d backups on %d states; want ≤ %d", backups, n, 10*n)
	}
}

// TestPrioritizedMaxReach exercises the sign=+1 (Pmax) path: values and
// strategies must match Gauss-Seidel on a model where some probability mass
// is lost to a sink.
func TestPrioritizedMaxReach(t *testing.T) {
	const n = 50
	m := New()
	m.AddStates(n + 1) // n chain states plus a losing sink
	sink := StateID(n)
	for s := 1; s < n; s++ {
		m.AddChoice(StateID(s), 0, 0, []Transition{
			{To: StateID(s - 1), P: 0.9}, {To: sink, P: 0.05}, {To: StateID(s), P: 0.05},
		})
	}
	m.AddChoice(0, -1, 0, []Transition{{To: 0, P: 1}})
	m.AddChoice(sink, -1, 0, []Transition{{To: sink, P: 1}})
	target := make([]bool, n+1)
	target[0] = true
	rg, err := m.MaxReachProb(target, nil, SolveOptions{Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := m.MaxReachProb(target, nil, SolveOptions{Method: Prioritized})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= n; s++ {
		if math.Abs(rg.Values[s]-rp.Values[s]) > 1e-6 {
			t.Fatalf("state %d: %v (GS) vs %v (prioritized)", s, rg.Values[s], rp.Values[s])
		}
	}
	if rp.Values[n-1] <= 0 || rp.Values[n-1] >= 1 {
		t.Fatalf("far-state Pmax = %v, want strictly inside (0,1)", rp.Values[n-1])
	}
}

// TestPrioritizedEmptyAndTrivial covers the degenerate paths: an empty
// model and a model whose only state is the target.
func TestPrioritizedEmptyAndTrivial(t *testing.T) {
	m := New()
	if _, err := m.MinExpectedReward(nil, nil, SolveOptions{Method: Prioritized}); err != nil {
		t.Fatal(err)
	}
	m2 := New()
	s := m2.AddState()
	m2.AddChoice(s, -1, 0, []Transition{{To: s, P: 1}})
	r, err := m2.MinExpectedReward([]bool{true}, nil, SolveOptions{Method: Prioritized})
	if err != nil {
		t.Fatal(err)
	}
	if r.Values[0] != 0 {
		t.Fatalf("target state value = %v, want 0", r.Values[0])
	}
}

// TestHeapStateOrder unit-tests the indexed heap: pops come out in priority
// order with ties broken toward the smaller state id, re-pushing a queued
// state raises but never lowers its priority, and pos tracking stays
// consistent.
func TestHeapStateOrder(t *testing.T) {
	const n = 8
	h := heapState{pri: make([]float64, n), pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	h.push(3, 1.0)
	h.push(5, 2.0)
	h.push(1, 2.0) // ties with 5; smaller id pops first
	h.push(7, 0.5)
	h.push(3, 5.0) // raise: 3 must now pop first
	h.push(5, 1.0) // lower: ignored, 5 keeps priority 2
	want := []int32{3, 1, 5, 7}
	for i, w := range want {
		if len(h.heap) == 0 {
			t.Fatalf("heap empty at pop %d", i)
		}
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = state %d, want %d", i, got, w)
		}
		if h.pos[got] != -1 {
			t.Fatalf("popped state %d still has pos %d", got, h.pos[got])
		}
	}
	if len(h.heap) != 0 {
		t.Fatalf("heap not drained: %d left", len(h.heap))
	}
}
