//go:build !medacheck

package mdp

// assertValid is a no-op in regular builds; the medacheck build tag swaps in
// full model validation at every solver entry point (assert_medacheck.go).
func assertValid(*MDP) {}
