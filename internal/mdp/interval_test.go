package mdp

import (
	"math"
	"testing"

	"meda/internal/randx"
)

func TestIntervalBoundsBracketVI(t *testing.T) {
	src := randx.New(55)
	for trial := 0; trial < 10; trial++ {
		m, target := randomMDP(src.SplitN("t", trial), 40, 3)
		vi, err := m.MaxReachProb(target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.IntervalMaxReachProb(target, nil, SolveOptions{Eps: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		if res.Width() > 1e-6 {
			t.Fatalf("trial %d: width = %v", trial, res.Width())
		}
		for s := range vi.Values {
			if vi.Values[s] < res.Lower[s]-1e-6 || vi.Values[s] > res.Upper[s]+1e-6 {
				t.Fatalf("trial %d state %d: VI %v outside [%v, %v]",
					trial, s, vi.Values[s], res.Lower[s], res.Upper[s])
			}
		}
	}
}

func TestIntervalCertify(t *testing.T) {
	src := randx.New(56)
	m, target := randomMDP(src, 30, 2)
	vi, err := m.MaxReachProb(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := m.CertifyMaxReachProb(vi.Values, target, nil, SolveOptions{Eps: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-6 {
		t.Errorf("certification violation = %v", worst)
	}
}

func TestIntervalUnreachablePinnedZero(t *testing.T) {
	m := New()
	s0 := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: trap, P: 1}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	m.AddChoice(goal, 0, 0, []Transition{{To: goal, P: 1}})
	res, err := m.IntervalMaxReachProb([]bool{false, false, true}, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upper[s0] != 0 || res.Upper[trap] != 0 {
		t.Errorf("unreachable states must certify 0: %v", res.Upper)
	}
	if res.Lower[goal] != 1 {
		t.Error("goal must certify 1")
	}
}

// TestIntervalEpsilonLoop: a state retrying with p=0.4 (self-loop failure
// branch) certifies Pmax = 1 despite the loop — the pure-self-loop exclusion
// is not needed here, the leak does the work.
func TestIntervalEpsilonLoop(t *testing.T) {
	m := New()
	s0 := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: goal, P: 0.4}, {To: s0, P: 0.6}})
	m.AddChoice(goal, 0, 0, []Transition{{To: goal, P: 1}})
	res, err := m.IntervalMaxReachProb([]bool{false, true}, nil, SolveOptions{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lower[s0]-1) > 1e-6 || math.Abs(res.Upper[s0]-1) > 1e-6 {
		t.Errorf("bounds = [%v, %v], want 1", res.Lower[s0], res.Upper[s0])
	}
}

// TestIntervalPureSelfLoopExcluded: an extra do-nothing choice must not keep
// the upper bound at 1.
func TestIntervalPureSelfLoopExcluded(t *testing.T) {
	m := New()
	s0 := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: s0, P: 1}}) // wait forever
	m.AddChoice(s0, 1, 1, []Transition{{To: goal, P: 0.5}, {To: s0, P: 0.5}})
	m.AddChoice(goal, 0, 0, []Transition{{To: goal, P: 1}})
	res, err := m.IntervalMaxReachProb([]bool{false, true}, nil, SolveOptions{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Upper[s0]-1) > 1e-6 {
		t.Errorf("upper = %v, want 1 (retry choice wins)", res.Upper[s0])
	}
	if res.Width() > 1e-6 {
		t.Errorf("width = %v, did not converge", res.Width())
	}
}

// TestIntervalDeterministicCycleLimitation documents the known limitation:
// a probability-1 two-cycle with an alternative route keeps the upper bound
// from closing, and the solver reports non-convergence rather than lying.
func TestIntervalDeterministicCycleLimitation(t *testing.T) {
	m := New()
	a := m.AddState()
	b := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	// The optimal play is the risky exit (Pmax = 0.5); cycling a↔b yields
	// nothing, but it keeps the naive upper bound at 1.
	m.AddChoice(a, 0, 1, []Transition{{To: b, P: 1}})
	m.AddChoice(a, 1, 1, []Transition{{To: goal, P: 0.5}, {To: trap, P: 0.5}})
	m.AddChoice(b, 0, 1, []Transition{{To: a, P: 1}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	m.AddChoice(goal, 0, 0, []Transition{{To: goal, P: 1}})
	_, err := m.IntervalMaxReachProb([]bool{false, false, false, true}, nil,
		SolveOptions{Eps: 1e-9, MaxIter: 5000})
	if err != ErrNoConvergence {
		t.Errorf("expected ErrNoConvergence on a deterministic cycle, got %v", err)
	}
}

func TestIntervalLabelMismatch(t *testing.T) {
	m := chainMDP(3)
	if _, err := m.IntervalMaxReachProb([]bool{true}, nil, SolveOptions{}); err == nil {
		t.Error("short target vector accepted")
	}
}
