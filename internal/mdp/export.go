// PRISM explicit-format export. The paper solved its per-job MDPs with
// PRISM-games; this repository ships its own solver, and these writers emit
// any model in PRISM's explicit import format (.tra/.lab) so results can be
// cross-validated against PRISM with
//
//	prism -importtrans model.tra -importlabels model.lab -mdp \
//	      -pctl 'Rmin=? [ F "goal" ]'
//
// (transition rewards are folded into a .trew file by WriteTrew).
package mdp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteTra writes the transition function in PRISM's explicit .tra format
// for MDPs: a header "states choices transitions" followed by one line per
// transition: "state choiceIndex target probability action".
func (m *MDP) WriteTra(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NumStates(), m.NumChoices(), m.NumTransitions()); err != nil {
		return err
	}
	g := m.flatten()
	for s := 0; s < g.n; s++ {
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if _, err := fmt.Fprintf(bw, "%d %d %d %g a%d\n",
					s, ci-g.stateOff[s], g.tos[ti], g.probs[ti], g.actions[ci]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteTrew writes per-choice transition rewards in PRISM's explicit .trew
// format: a header "states choices transitions" followed by one line per
// transition carrying the choice's reward.
func (m *MDP) WriteTrew(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NumStates(), m.NumChoices(), m.NumTransitions()); err != nil {
		return err
	}
	g := m.flatten()
	for s := 0; s < g.n; s++ {
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if _, err := fmt.Fprintf(bw, "%d %d %d %g\n",
					s, ci-g.stateOff[s], g.tos[ti], g.rewards[ci]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteLab writes state labels in PRISM's explicit .lab format: a header
// enumerating label names ("init" is conventionally label 0), then one line
// per labeled state: "state: labelIndex...". The labels map associates each
// name with its membership vector; init marks the initial state.
func (m *MDP) WriteLab(w io.Writer, init StateID, labels map[string][]bool) error {
	n := m.NumStates()
	names := make([]string, 0, len(labels))
	for name, vec := range labels {
		if len(vec) != n {
			return fmt.Errorf("mdp: label %q has %d entries for %d states", name, len(vec), n)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `0="init"`)
	for i, name := range names {
		fmt.Fprintf(bw, ` %d=%q`, i+1, name)
	}
	fmt.Fprintln(bw)
	for s := 0; s < n; s++ {
		var idxs []int
		if StateID(s) == init {
			idxs = append(idxs, 0)
		}
		for i, name := range names {
			if labels[name][s] {
				idxs = append(idxs, i+1)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		fmt.Fprintf(bw, "%d:", s)
		for _, i := range idxs {
			fmt.Fprintf(bw, " %d", i)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
