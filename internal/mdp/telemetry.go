package mdp

import "meda/internal/telemetry"

// Solver telemetry (internal/telemetry default registry). Metrics are
// resolved once at init so the value-iteration hot loop pays only atomic
// adds; names are stable API for the /metrics endpoint and medabench.
var (
	// telSolves counts value-iteration solves (one per MaxReachProb or
	// MinExpectedReward call); telSweeps accumulates their sweeps, so
	// telSweeps/telSolves is the mean sweeps-to-convergence.
	telSolves = telemetry.C("mdp.vi.solves")
	telSweeps = telemetry.C("mdp.vi.sweeps")
	// telSweepsPerSolve is the distribution behind that mean.
	telSweepsPerSolve = telemetry.H("mdp.vi.sweeps_per_solve", telemetry.CountBuckets...)
	// telResidual is the max-norm residual of the last completed solve
	// (below Eps on convergence, the diverging delta on exhaustion).
	telResidual = telemetry.G("mdp.vi.last_residual")
	// telProb1E tracks the qualitative almost-sure-reachability pass that
	// precedes every Rmin solve: call count and cumulative nanoseconds.
	telProb1ECalls = telemetry.C("mdp.prob1e.calls")
	telProb1ENs    = telemetry.C("mdp.prob1e.ns")
	// telPrioBackups counts individual Bellman backups performed by the
	// prioritized solver (queue pops plus verification-sweep updates);
	// telPrioBackups / telSolves vs n·sweeps is the work saved over a
	// sweep-based solver.
	telPrioBackups = telemetry.C("mdp.vi.prioritized_backups")
)
