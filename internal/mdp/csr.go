// Compressed-sparse-row flattening of the MDP. The builder API of mdp.go
// stores a pointer-chasing [][]Choice graph, which is convenient to grow but
// hostile to the value-iteration hot loop: every sweep walks three levels of
// slices with poor locality. flatten() packs the whole model once per Solve
// into five contiguous arrays (state → choice offsets, choice → transition
// offsets, per-choice action/reward, per-transition successor/probability),
// so a Bellman backup is two tight index-range loops over sequential memory.
//
// The same layout carries a reverse-edge index (successor → incoming
// choices), which turns the qualitative Prob1E pass from repeated forward
// scans into a worklist propagation, and it is the substrate for the
// chunk-parallel Jacobi sweeps: states are split into contiguous chunks and
// updated by a sync.WaitGroup worker pool sized by GOMAXPROCS. Jacobi reads
// only the previous iterate, so the parallel result is bit-identical to the
// sequential one; Gauss-Seidel remains the sequential option, alternating
// sweep direction each iteration so value information propagates end to end
// regardless of how state ids are ordered relative to the goal.
package mdp

import (
	"math"
	"runtime"
	"sync"
	"time"
)

// csr is the flattened model. Offsets are int32: routing models have well
// under 2^31 choices/transitions, and the narrower indices halve the memory
// traffic of a sweep.
type csr struct {
	n         int       // number of states
	stateOff  []int32   // len n+1: choices of state s are [stateOff[s], stateOff[s+1])
	choiceOff []int32   // len numChoices+1: transitions of choice c are [choiceOff[c], choiceOff[c+1])
	actions   []int32   // per choice: caller-supplied action id
	rewards   []float64 // per choice
	tos       []int32   // per transition: successor state
	probs     []float64 // per transition

	// Reverse-edge index over positive-probability transitions, built lazily
	// by reverseIndex(): revChoice lists the (global) choice ids with an
	// incoming edge to state t in [revOff[t], revOff[t+1]); choiceState maps
	// a global choice id back to its owning state. revBuilt gates the lazy
	// build so Builder.Reset can recycle the slabs in place.
	revBuilt    bool
	revOff      []int32
	revChoice   []int32
	choiceState []int32

	// Per-choice self-loop factor 1/(1-q) for the self-loop-eliminated
	// backups (0 marks a pure self-loop choice, which those backups skip),
	// built lazily by selfLoopInv(). Like the reverse index it depends only
	// on the model structure, so it is built once and recycled by
	// Builder.Reset.
	slBuilt bool
	slInv   []float64

	// Solver scratch, grown in place and reused across solves so a
	// Builder-recycled model pays no per-solve allocations for it. The
	// slabs are private to one solve at a time: models sharing a csr
	// (Builder-built ones) must not be solved concurrently.
	scrDst    []float64 // jacobi ping-pong buffer
	scrFrozen []bool
	scrInU    []bool  // prob1E: candidate set U
	scrInR    []bool  // prob1E: reach closure R
	scrBad    []int32 // prob1E: per-choice leave-U counts
	scrQueue  []int32 // worklist shared by prob1E and strategy extraction
	scrMark   []int32 // reverseIndex: per-state dedup marks
	scrPri    []float64
	scrHeap   []int32
	scrHPos   []int32
}

// growF, growB and growI resize a scratch slab to n elements, reusing the
// backing array when it is large enough. Contents are unspecified; callers
// initialize what they read.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growI(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// flatten packs the MDP into CSR form. Builder-built models are already
// flat and return their (scratch-carrying) csr directly; list-backed models
// pack fresh per call, so the builder slices stay authoritative for
// Choices()/export and concurrent solves never share scratch.
func (m *MDP) flatten() *csr {
	if m.flat != nil {
		return m.flat
	}
	n := len(m.choices)
	nc := m.NumChoices()
	g := &csr{
		n:         n,
		stateOff:  make([]int32, n+1),
		choiceOff: make([]int32, nc+1),
		actions:   make([]int32, nc),
		rewards:   make([]float64, nc),
		tos:       make([]int32, m.numTr),
		probs:     make([]float64, m.numTr),
	}
	ci, ti := int32(0), int32(0)
	for s, cs := range m.choices {
		g.stateOff[s] = ci
		for _, c := range cs {
			g.choiceOff[ci] = ti
			g.actions[ci] = int32(c.Action)
			g.rewards[ci] = c.Reward
			for _, tr := range c.Transitions {
				g.tos[ti] = int32(tr.To)
				g.probs[ti] = tr.P
				ti++
			}
			ci++
		}
	}
	g.stateOff[n] = ci
	g.choiceOff[nc] = ti
	return g
}

// reverseIndex builds the successor → incoming-choice index (positive-
// probability edges only, deduplicated per choice) plus the choice → state
// map. Idempotent.
func (g *csr) reverseIndex() {
	if g.revBuilt {
		return
	}
	nc := len(g.actions)
	g.choiceState = growI(g.choiceState, nc)
	for s := 0; s < g.n; s++ {
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			g.choiceState[ci] = int32(s)
		}
	}
	// Counting pass. A choice may have several transitions into the same
	// successor; deduplicate so the worklist visits each (choice, succ)
	// pair once.
	counts := growI(g.revOff, g.n+1)
	for i := range counts {
		counts[i] = 0
	}
	mark := growI(g.scrMark, g.n) // last choice that counted an edge into t
	g.scrMark = mark
	for i := range mark {
		mark[i] = -1
	}
	for ci := 0; ci < nc; ci++ {
		for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
			if g.probs[ti] <= 0 {
				continue
			}
			t := g.tos[ti]
			if mark[t] == int32(ci) {
				continue
			}
			mark[t] = int32(ci)
			counts[t+1]++
		}
	}
	for t := 0; t < g.n; t++ {
		counts[t+1] += counts[t]
	}
	g.revOff = counts
	g.revChoice = growI(g.revChoice, int(counts[g.n]))
	// Reuse the mark slab as the per-state write cursor; a second scratch
	// tracks the dedup marks for the fill pass.
	next := growI(g.scrQueue, g.n)
	g.scrQueue = next
	copy(next, counts[:g.n])
	for i := range mark {
		mark[i] = -1
	}
	for ci := 0; ci < nc; ci++ {
		for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
			if g.probs[ti] <= 0 {
				continue
			}
			t := g.tos[ti]
			if mark[t] == int32(ci) {
				continue
			}
			mark[t] = int32(ci)
			g.revChoice[next[t]] = int32(ci)
			next[t]++
		}
	}
	g.revBuilt = true
}

// bellmanMax is max_c Σ_t P·src[t] over the choices of s (0 with none).
// Slab fields are hoisted into locals to keep the inner loops tight.
//
//meda:hotpath
func (g *csr) bellmanMax(s int, src []float64) float64 {
	choiceOff, tos, probs := g.choiceOff, g.tos, g.probs
	best := 0.0
	for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
		v := 0.0
		for ti := choiceOff[ci]; ti < choiceOff[ci+1]; ti++ {
			v += probs[ti] * src[tos[ti]]
		}
		if v > best {
			best = v
		}
	}
	return best
}

// bellmanMin is min_c (reward_c + Σ_t P·src[t]) over the choices of s
// (+Inf with none). Zero-probability transitions are skipped so 0·Inf does
// not poison finite values. The slab fields are hoisted into locals so the
// inner loops stay free of repeated pointer loads.
//
//meda:hotpath
func (g *csr) bellmanMin(s int, src []float64) float64 {
	choiceOff, tos, probs := g.choiceOff, g.tos, g.probs
	best := math.Inf(1)
	for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
		v := g.rewards[ci]
		for ti := choiceOff[ci]; ti < choiceOff[ci+1]; ti++ {
			if p := probs[ti]; p > 0 {
				v += p * src[tos[ti]]
			}
		}
		if v < best {
			best = v
		}
	}
	return best
}

// bellmanMaxSL and bellmanMinSL are the self-loop-eliminated Bellman
// backups used by every reachability/reward solve. Every microfluidic
// action has an ε outcome that leaves the droplet in place, so every
// routing-model choice carries a self-loop; plain value iteration squeezes
// value through those loops a geometric sliver per sweep, which is what the
// hundreds of convergence sweeps in the solver telemetry were spent on.
// Folding the loop into the backup — v = (r + Σ_{t≠s} p·v_t)/(1−q) with q
// the choice's self-loop mass — solves each choice's one-state fixpoint in
// closed form. This is value iteration on the standard self-loop-removed
// transformation of the MDP (probabilities and reward rescaled by 1/(1−q)),
// which has the same fixpoint and optimal strategies; at the fixpoint a
// plain one-step choice value equals the state value exactly, so strategy
// extraction over the original model is unaffected. The 1/(1−q) factors are
// a static model property and are precomputed once by selfLoopInv().

// selfLoopInv builds the per-choice 1/(1-q) slab, with q the choice's
// self-loop probability mass; choices with q ≈ 1 (pure self-loops) get 0 as
// a skip marker. Idempotent.
func (g *csr) selfLoopInv() {
	if g.slBuilt {
		return
	}
	nc := len(g.actions)
	inv := growF(g.slInv, nc)
	for ci := 0; ci < nc; ci++ {
		q := 0.0
		s := g.choiceStateOf(ci)
		for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
			if g.probs[ti] > 0 && int(g.tos[ti]) == s {
				q += g.probs[ti]
			}
		}
		switch {
		case q >= 1-1e-12:
			inv[ci] = 0
		case q > 0:
			inv[ci] = 1 / (1 - q)
		default:
			inv[ci] = 1
		}
	}
	g.slInv = inv
	g.slBuilt = true
}

// choiceStateOf maps a global choice id to its owning state without
// requiring the reverse index (binary search over stateOff).
func (g *csr) choiceStateOf(ci int) int {
	if g.revBuilt {
		return int(g.choiceState[ci])
	}
	lo, hi := 0, g.n
	for lo < hi {
		mid := (lo + hi) / 2
		if int(g.stateOff[mid+1]) <= ci {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// bellmanMaxSL is bellmanMax with self-loop elimination. A pure self-loop
// choice (slInv 0) is skipped: it can only ever yield the state's current
// value, which a from-below iterate never exceeds.
//
//meda:hotpath
func (g *csr) bellmanMaxSL(s int, src []float64) float64 {
	choiceOff, tos, probs, inv := g.choiceOff, g.tos, g.probs, g.slInv
	best := 0.0
	for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
		v := 0.0
		for ti := choiceOff[ci]; ti < choiceOff[ci+1]; ti++ {
			if int(tos[ti]) != s {
				v += probs[ti] * src[tos[ti]]
			}
		}
		v *= inv[ci]
		if v > best {
			best = v
		}
	}
	return best
}

// bellmanMinSL is bellmanMin with self-loop elimination. A pure self-loop
// choice never reaches the target, so its expected reward is +Inf and it is
// skipped (slInv 0 would otherwise yield a spuriously cheap 0).
//
//meda:hotpath
func (g *csr) bellmanMinSL(s int, src []float64) float64 {
	choiceOff, tos, probs, inv := g.choiceOff, g.tos, g.probs, g.slInv
	best := math.Inf(1)
	for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
		if inv[ci] == 0 {
			continue
		}
		v := g.rewards[ci]
		for ti := choiceOff[ci]; ti < choiceOff[ci+1]; ti++ {
			if p := probs[ti]; p > 0 && int(tos[ti]) != s {
				v += p * src[tos[ti]]
			}
		}
		v *= inv[ci]
		if v < best {
			best = v
		}
	}
	return best
}

// sweepWorkers resolves the worker count for a Jacobi sweep: opt.Workers,
// defaulting to GOMAXPROCS, clamped so each worker gets a usefully large
// chunk (tiny models are not worth the fan-out).
func sweepWorkers(opt SolveOptions, n int) int {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	const minChunk = 512
	if max := (n + minChunk - 1) / minChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// jacobiSweep computes dst[s] = bellman(s, src) for all non-frozen states
// (frozen states copy through), fanning the state range out to workers
// goroutines. It returns the max-norm residual and the smallest state id
// attaining it; both are independent of the worker count.
func (g *csr) jacobiSweep(frozen []bool, src, dst []float64, workers int,
	bellman func(s int, src []float64) float64) (float64, int) {
	type part struct {
		delta float64
		worst int
	}
	run := func(lo, hi int) part {
		p := part{worst: -1}
		for s := lo; s < hi; s++ {
			if frozen[s] {
				dst[s] = src[s]
				continue
			}
			v := bellman(s, src)
			dst[s] = v
			if d := math.Abs(v - src[s]); d > p.delta {
				p.delta = d
				p.worst = s
			}
		}
		return p
	}
	if workers <= 1 {
		p := run(0, g.n)
		return p.delta, p.worst
	}
	parts := make([]part, workers)
	chunk := (g.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > g.n {
			hi = g.n
		}
		if lo >= hi {
			parts[w] = part{worst: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = run(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	best := part{worst: -1}
	for _, p := range parts {
		// Deterministic merge: larger delta wins; ties keep the smaller
		// state id (parts are in state order).
		if p.worst >= 0 && (p.delta > best.delta || best.worst < 0) {
			best = p
		}
	}
	return best.delta, best.worst
}

// iterate runs value iteration over the CSR model until the max-norm
// residual drops below eps, with Gauss-Seidel updating vals in place and
// Jacobi ping-ponging two buffers across the parallel sweep. On success the
// converged values are in vals and the iteration count is returned; on
// exhaustion it returns a *ConvergenceError naming the worst state. Sweep
// counts and the final residual feed the solver telemetry.
func (g *csr) iterate(vals []float64, frozen []bool, opt SolveOptions, sign float64,
	bellman func(s int, src []float64) float64) (int, error) {
	iters, delta, err := g.iterateRaw(vals, frozen, opt, sign, bellman)
	telSolves.Inc()
	telSweeps.Add(int64(iters))
	telSweepsPerSolve.Observe(float64(iters))
	telResidual.Set(delta)
	return iters, err
}

// iterateRaw is iterate without telemetry, additionally reporting the final
// max-norm residual. sign orients the prioritized solver's processing order
// (+1 for maximizing objectives, -1 for minimizing); the sweep solvers
// ignore it.
func (g *csr) iterateRaw(vals []float64, frozen []bool, opt SolveOptions, sign float64,
	bellman func(s int, src []float64) float64) (int, float64, error) {
	if opt.Method == Prioritized {
		return g.prioritizedIterate(vals, frozen, opt, sign, bellman)
	}
	if opt.Method == Jacobi {
		workers := sweepWorkers(opt, g.n)
		src := vals
		dst := growF(g.scrDst, g.n)
		g.scrDst = dst
		for iters := 0; iters < opt.MaxIter; iters++ {
			delta, worst := g.jacobiSweep(frozen, src, dst, workers, bellman)
			src, dst = dst, src
			if delta < opt.Eps {
				if &src[0] != &vals[0] {
					copy(vals, src)
				}
				return iters + 1, delta, nil
			}
			if iters == opt.MaxIter-1 {
				if &src[0] != &vals[0] {
					copy(vals, src)
				}
				return iters + 1, delta, g.convergenceError(worst, delta, opt.MaxIter)
			}
		}
		return 0, math.Inf(1), g.convergenceError(-1, math.Inf(1), opt.MaxIter)
	}
	// Gauss-Seidel: sequential in-place sweeps, alternating direction.
	for iters := 0; iters < opt.MaxIter; iters++ {
		delta := 0.0
		worst := -1
		if iters%2 == 1 {
			for s := g.n - 1; s >= 0; s-- {
				if frozen[s] {
					continue
				}
				v := bellman(s, vals)
				if d := math.Abs(v - vals[s]); d > delta {
					delta = d
					worst = s
				}
				vals[s] = v
			}
		} else {
			for s := 0; s < g.n; s++ {
				if frozen[s] {
					continue
				}
				v := bellman(s, vals)
				if d := math.Abs(v - vals[s]); d > delta {
					delta = d
					worst = s
				}
				vals[s] = v
			}
		}
		if delta < opt.Eps {
			return iters + 1, delta, nil
		}
		if iters == opt.MaxIter-1 {
			return iters + 1, delta, g.convergenceError(worst, delta, opt.MaxIter)
		}
	}
	return 0, math.Inf(1), g.convergenceError(-1, math.Inf(1), opt.MaxIter)
}

// convergenceError labels an exhausted iteration with the state that was
// still changing and its first action, so failures in generated models point
// at the offending region instead of a bare "did not converge".
func (g *csr) convergenceError(worst int, delta float64, iters int) error {
	e := &ConvergenceError{State: StateID(worst), Action: -1, Delta: delta, Iterations: iters}
	if worst >= 0 && g.stateOff[worst] < g.stateOff[worst+1] {
		e.Action = int(g.actions[g.stateOff[worst]])
	}
	return e
}

// prob1E is the qualitative almost-sure-reachability pass over the CSR
// model: the greatest fixpoint over U of "can reach target with positive
// probability using choices that stay inside U". The inner least fixpoint is
// a backward worklist over the reverse-edge index — each outer round costs
// one scan of the transitions (to refresh per-choice leave-U counts) plus
// work proportional to the edges actually propagated, instead of repeated
// full forward sweeps.
//
// The returned slice is solver scratch owned by g: it is valid until the
// next solve (or prob1E call) on the same model. MDP.Prob1E copies it for
// external callers.
func (g *csr) prob1E(target, avoid []bool) []bool {
	t0 := time.Now()
	defer func() {
		telProb1ECalls.Inc()
		telProb1ENs.Add(time.Since(t0).Nanoseconds())
	}()
	g.reverseIndex()
	nc := len(g.actions)
	inU := growB(g.scrInU, g.n)
	g.scrInU = inU
	for s := 0; s < g.n; s++ {
		inU[s] = avoid == nil || !avoid[s]
	}
	inR := growB(g.scrInR, g.n)
	g.scrInR = inR
	bad := growI(g.scrBad, nc) // per choice: #positive transitions leaving U
	g.scrBad = bad
	queue := growI(g.scrQueue, g.n)[:0]
	g.scrQueue = queue
	for {
		for ci := range bad {
			bad[ci] = 0
		}
		for ci := 0; ci < nc; ci++ {
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if g.probs[ti] > 0 && !inU[g.tos[ti]] {
					bad[ci]++
				}
			}
		}
		queue = queue[:0]
		for s := 0; s < g.n; s++ {
			inR[s] = inU[s] && target[s]
			if inR[s] {
				queue = append(queue, int32(s))
			}
		}
		for len(queue) > 0 {
			t := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for ri := g.revOff[t]; ri < g.revOff[t+1]; ri++ {
				ci := g.revChoice[ri]
				s := g.choiceState[ci]
				if !inU[s] || inR[s] || bad[ci] > 0 {
					continue
				}
				inR[s] = true
				queue = append(queue, s)
			}
		}
		same := true
		for s := 0; s < g.n; s++ {
			if inU[s] != inR[s] {
				same = false
			}
			inU[s] = inR[s]
		}
		if same {
			return inU
		}
	}
}
