// Interval iteration for maximum reachability probabilities. Plain value
// iteration converges to Pmax from below and stops on a small difference
// between sweeps — which can under-approximate badly on slowly contracting
// models. Interval iteration (Haddad & Monmege, 2014) additionally iterates
// an upper bound from above; when the two meet within ε the result is
// *certified* to ε. The routing models here contract quickly, so ordinary
// value iteration is the default; IntervalMaxReachProb exists to verify it.
package mdp

import (
	"errors"
	"math"
)

// IntervalResult carries certified bounds on Pmax per state.
type IntervalResult struct {
	Lower      []float64
	Upper      []float64
	Iterations int
}

// Width returns the largest gap upper−lower over all states.
func (r IntervalResult) Width() float64 {
	w := 0.0
	for i := range r.Lower {
		if d := r.Upper[i] - r.Lower[i]; d > w {
			w = d
		}
	}
	return w
}

// IntervalMaxReachProb computes certified bounds on Pmax(◇target) with
// avoid states losing, by iterating a lower bound from 0 and an upper bound
// from 1. To guarantee the upper bound converges to the true value (and not
// to a greater fixpoint), states that cannot reach the target at all are
// detected graph-theoretically first and pinned to 0.
func (m *MDP) IntervalMaxReachProb(target, avoid []bool, opt SolveOptions) (IntervalResult, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || (avoid != nil && len(avoid) != n) {
		return IntervalResult{}, errors.New("mdp: label vector length mismatch")
	}
	blocked := func(s int) bool { return avoid != nil && avoid[s] }
	g := m.flatten()

	// canReach: states with some path to a target state avoiding `avoid`.
	canReach := make([]bool, n)
	for s := 0; s < n; s++ {
		canReach[s] = target[s] && !blocked(s)
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if canReach[s] || blocked(s) {
				continue
			}
		scan:
			for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
				for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
					if g.probs[ti] > 0 && canReach[g.tos[ti]] {
						canReach[s] = true
						changed = true
						break scan
					}
				}
			}
		}
	}

	lo := make([]float64, n)
	hi := make([]float64, n)
	for s := 0; s < n; s++ {
		switch {
		case target[s] && !blocked(s):
			lo[s], hi[s] = 1, 1
		case !canReach[s]:
			lo[s], hi[s] = 0, 0
		default:
			lo[s], hi[s] = 0, 1
		}
	}
	frozen := func(s int) bool {
		return (target[s] && !blocked(s)) || !canReach[s] || g.stateOff[s] == g.stateOff[s+1]
	}
	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		width := 0.0
		for s := 0; s < n; s++ {
			if frozen(s) {
				continue
			}
			bestLo, bestHi := 0.0, 0.0
			for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
				vLo, vHi := 0.0, 0.0
				pure := true
				for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
					vLo += g.probs[ti] * lo[g.tos[ti]]
					vHi += g.probs[ti] * hi[g.tos[ti]]
					if g.probs[ti] > 0 && int(g.tos[ti]) != s {
						pure = false
					}
				}
				if vLo > bestLo {
					bestLo = vLo
				}
				// A pure self-loop choice contributes its own value and
				// can never improve Pmax; excluding it from the upper
				// bound removes the trivial end component it forms.
				if !pure && vHi > bestHi {
					bestHi = vHi
				}
			}
			lo[s] = bestLo
			// The upper bound must never rise (monotone from above).
			if bestHi < hi[s] {
				hi[s] = bestHi
			}
			if d := hi[s] - lo[s]; d > width {
				width = d
			}
		}
		if width < opt.Eps {
			iters++
			break
		}
	}
	if iters >= opt.MaxIter {
		return IntervalResult{}, ErrNoConvergence
	}
	return IntervalResult{Lower: lo, Upper: hi, Iterations: iters}, nil
}

// CertifyMaxReachProb runs interval iteration and checks that a previously
// computed value vector lies within the certified bounds (± slack); it
// returns the worst violation found, 0 when fully certified.
func (m *MDP) CertifyMaxReachProb(values []float64, target, avoid []bool, opt SolveOptions) (float64, error) {
	res, err := m.IntervalMaxReachProb(target, avoid, opt)
	if err != nil {
		return math.Inf(1), err
	}
	worst := 0.0
	for s := range values {
		if d := res.Lower[s] - values[s]; d > worst {
			worst = d
		}
		if d := values[s] - res.Upper[s]; d > worst {
			worst = d
		}
	}
	return worst, nil
}
