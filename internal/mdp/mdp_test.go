package mdp

import (
	"math"
	"testing"

	"meda/internal/randx"
)

// chainMDP builds a deterministic chain 0 → 1 → ... → n−1 with unit rewards.
func chainMDP(n int) *MDP {
	m := New()
	m.AddStates(n)
	for s := 0; s < n-1; s++ {
		m.AddChoice(StateID(s), 0, 1, []Transition{{To: StateID(s + 1), P: 1}})
	}
	return m
}

func labelLast(n int) []bool {
	l := make([]bool, n)
	l[n-1] = true
	return l
}

func TestValidateAcceptsChain(t *testing.T) {
	m := chainMDP(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 5 || m.NumChoices() != 4 || m.NumTransitions() != 4 {
		t.Errorf("stats = %d/%d/%d", m.NumStates(), m.NumChoices(), m.NumTransitions())
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := New()
	s := m.AddState()
	m.AddChoice(s, 0, 1, nil)
	if err := m.Validate(); err == nil {
		t.Error("empty transition list accepted")
	}

	m = New()
	s = m.AddState()
	m.AddChoice(s, 0, 1, []Transition{{To: 7, P: 1}})
	if err := m.Validate(); err == nil {
		t.Error("out-of-range target accepted")
	}

	m = New()
	s = m.AddState()
	m.AddChoice(s, 0, 1, []Transition{{To: s, P: 0.5}})
	if err := m.Validate(); err == nil {
		t.Error("sub-stochastic distribution accepted")
	}

	m = New()
	s = m.AddState()
	m.AddChoice(s, 0, -1, []Transition{{To: s, P: 1}})
	if err := m.Validate(); err == nil {
		t.Error("negative reward accepted")
	}
}

func TestMinExpectedRewardChain(t *testing.T) {
	const n = 10
	m := chainMDP(n)
	res, err := m.MinExpectedReward(labelLast(n), nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		want := float64(n - 1 - s)
		if math.Abs(res.Values[s]-want) > 1e-6 {
			t.Errorf("J(%d) = %v, want %v", s, res.Values[s], want)
		}
	}
	// Strategy: every non-target state selects its only choice.
	for s := 0; s < n-1; s++ {
		if res.Strategy[s] != 0 {
			t.Errorf("strategy[%d] = %d", s, res.Strategy[s])
		}
	}
	if res.Strategy[n-1] != -1 {
		t.Error("target state must select nothing")
	}
}

// TestGeometricSelfLoop: a state that succeeds with probability p and
// otherwise stays put has expected hitting time 1/p.
func TestGeometricSelfLoop(t *testing.T) {
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		m := New()
		s0 := m.AddState()
		goal := m.AddState()
		m.AddChoice(s0, 0, 1, []Transition{{To: goal, P: p}, {To: s0, P: 1 - p}})
		res, err := m.MinExpectedReward([]bool{false, true}, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[s0]-1/p) > 1e-6 {
			t.Errorf("p=%v: J = %v, want %v", p, res.Values[s0], 1/p)
		}
	}
}

// TestMinRewardPicksBetterChoice: a slow sure path (3 steps) vs a fast risky
// action (p=0.5 self-loop, expected 2 steps): the solver must pick risky.
func TestMinRewardPicksBetterChoice(t *testing.T) {
	m := New()
	s0 := m.AddState()
	a := m.AddState()
	b := m.AddState()
	goal := m.AddState()
	// Choice 0: deterministic detour of 3 steps.
	m.AddChoice(s0, 100, 1, []Transition{{To: a, P: 1}})
	m.AddChoice(a, 0, 1, []Transition{{To: b, P: 1}})
	m.AddChoice(b, 0, 1, []Transition{{To: goal, P: 1}})
	// Choice 1: geometric with p = 0.5 → expected 2 steps.
	m.AddChoice(s0, 200, 1, []Transition{{To: goal, P: 0.5}, {To: s0, P: 0.5}})
	target := []bool{false, false, false, true}
	res, err := m.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[s0]-2) > 1e-6 {
		t.Errorf("J(s0) = %v, want 2", res.Values[s0])
	}
	if act, ok := res.Strategy.Action(m, s0); !ok || act != 200 {
		t.Errorf("strategy picked action %v/%v, want 200", act, ok)
	}
}

func TestMinRewardUnreachableIsInf(t *testing.T) {
	m := New()
	s0 := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: trap, P: 1}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	m.AddChoice(goal, 0, 1, []Transition{{To: goal, P: 1}})
	res, err := m.MinExpectedReward([]bool{false, false, true}, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Values[s0], 1) || !math.IsInf(res.Values[trap], 1) {
		t.Errorf("unreachable states must be +Inf, got %v", res.Values)
	}
	if res.Values[goal] != 0 {
		t.Errorf("goal value = %v", res.Values[goal])
	}
}

// TestMinRewardAlmostSureOnly: a state with one choice that reaches the goal
// with p=0.9 but falls into a trap with p=0.1 has Rmin = ∞ (PRISM
// semantics: reward is infinite unless the goal is reached almost surely).
func TestMinRewardAlmostSureOnly(t *testing.T) {
	m := New()
	s0 := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: goal, P: 0.9}, {To: trap, P: 0.1}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	res, err := m.MinExpectedReward([]bool{false, false, true}, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Values[s0], 1) {
		t.Errorf("J(s0) = %v, want +Inf", res.Values[s0])
	}
}

func TestProb1E(t *testing.T) {
	m := New()
	s0 := m.AddState()   // can retry forever → a.s.
	s1 := m.AddState()   // risky only → not a.s.
	trap := m.AddState() // absorbing
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: goal, P: 0.5}, {To: s0, P: 0.5}})
	m.AddChoice(s1, 0, 1, []Transition{{To: goal, P: 0.5}, {To: trap, P: 0.5}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	target := []bool{false, false, false, true}
	as := m.Prob1E(target, nil)
	if !as[s0] {
		t.Error("s0 (retryable) must be almost-sure winning")
	}
	if as[s1] {
		t.Error("s1 (risky only) must not be almost-sure winning")
	}
	if as[trap] {
		t.Error("trap must not be almost-sure winning")
	}
	if !as[goal] {
		t.Error("goal must be almost-sure winning")
	}
}

func TestMaxReachProbBasics(t *testing.T) {
	m := New()
	s0 := m.AddState()
	s1 := m.AddState()
	trap := m.AddState()
	goal := m.AddState()
	// s0 has two choices: safe 0.9 to goal / 0.1 trap, or 0.5/0.5 via s1.
	m.AddChoice(s0, 1, 1, []Transition{{To: goal, P: 0.9}, {To: trap, P: 0.1}})
	m.AddChoice(s0, 2, 1, []Transition{{To: s1, P: 0.5}, {To: trap, P: 0.5}})
	m.AddChoice(s1, 0, 1, []Transition{{To: goal, P: 1}})
	m.AddChoice(trap, 0, 1, []Transition{{To: trap, P: 1}})
	target := []bool{false, false, false, true}
	res, err := m.MaxReachProb(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[s0]-0.9) > 1e-9 {
		t.Errorf("Pmax(s0) = %v, want 0.9", res.Values[s0])
	}
	if act, ok := res.Strategy.Action(m, s0); !ok || act != 1 {
		t.Errorf("strategy action = %v/%v, want 1", act, ok)
	}
	if res.Values[trap] != 0 || res.Values[goal] != 1 {
		t.Error("absorbing values wrong")
	}
}

func TestMaxReachProbWithAvoid(t *testing.T) {
	m := New()
	s0 := m.AddState()
	hz := m.AddState()
	goal := m.AddState()
	// Direct risky route passes through the hazard with p=0.4.
	m.AddChoice(s0, 1, 1, []Transition{{To: goal, P: 0.6}, {To: hz, P: 0.4}})
	// Slow route: self-loop with small success, never hazard.
	m.AddChoice(s0, 2, 1, []Transition{{To: goal, P: 0.2}, {To: s0, P: 0.8}})
	m.AddChoice(hz, 0, 1, []Transition{{To: goal, P: 1}})
	target := []bool{false, false, true}
	avoid := []bool{false, true, false}
	res, err := m.MaxReachProb(target, avoid, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With the hazard forbidden, the slow route wins: Pmax = 1.
	if math.Abs(res.Values[s0]-1) > 1e-6 {
		t.Errorf("Pmax(s0) = %v, want 1", res.Values[s0])
	}
	if act, _ := res.Strategy.Action(m, s0); act != 2 {
		t.Errorf("strategy must avoid the hazard, picked %d", act)
	}
	if res.Values[hz] != 0 {
		t.Error("hazard value must be 0")
	}
}

func TestAvoidOverridesTarget(t *testing.T) {
	m := New()
	s := m.AddState()
	m.AddChoice(s, 0, 1, []Transition{{To: s, P: 1}})
	res, err := m.MaxReachProb([]bool{true}, []bool{true}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[s] != 0 {
		t.Error("state both target and avoid must value 0")
	}
}

func TestJacobiMatchesGaussSeidel(t *testing.T) {
	src := randx.New(99)
	m, target := randomMDP(src, 60, 3)
	gs, err := m.MinExpectedReward(target, nil, SolveOptions{Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := m.MinExpectedReward(target, nil, SolveOptions{Method: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	for s := range gs.Values {
		a, b := gs.Values[s], jc.Values[s]
		if math.IsInf(a, 1) != math.IsInf(b, 1) {
			t.Fatalf("finiteness mismatch at %d", s)
		}
		if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6 {
			t.Fatalf("value mismatch at %d: %v vs %v", s, a, b)
		}
	}
	pg, err := m.MaxReachProb(target, nil, SolveOptions{Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := m.MaxReachProb(target, nil, SolveOptions{Method: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	for s := range pg.Values {
		if math.Abs(pg.Values[s]-pj.Values[s]) > 1e-6 {
			t.Fatalf("prob mismatch at %d", s)
		}
	}
}

// randomMDP builds a random strongly-connected-ish MDP over n states with k
// choices per state; the last state is the absorbing target.
func randomMDP(src *randx.Source, n, k int) (*MDP, []bool) {
	m := New()
	m.AddStates(n)
	for s := 0; s < n-1; s++ {
		for c := 0; c < k; c++ {
			// Two-successor distribution with a bias toward moving
			// forward so the target is reachable.
			t1 := StateID(src.IntN(n))
			t2 := StateID(src.IntN(n))
			p := 0.2 + 0.6*src.Float64()
			m.AddChoice(StateID(s), c, 1, []Transition{{To: t1, P: p}, {To: t2, P: 1 - p}})
		}
		// Guarantee a path onward.
		m.AddChoice(StateID(s), k, 1, []Transition{{To: StateID(s + 1), P: 1}})
	}
	m.AddChoice(StateID(n-1), 0, 1, []Transition{{To: StateID(n - 1), P: 1}})
	return m, labelLast(n)
}

// TestStrategyAchievesValue evaluates the extracted min-reward strategy as a
// Markov chain and checks its expected cost matches the optimal values.
func TestStrategyAchievesValue(t *testing.T) {
	src := randx.New(123)
	for trial := 0; trial < 10; trial++ {
		m, target := randomMDP(src.SplitN("t", trial), 40, 2)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := m.MinExpectedReward(target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Policy evaluation by iteration.
		n := m.NumStates()
		vals := make([]float64, n)
		for iter := 0; iter < 200000; iter++ {
			delta := 0.0
			for s := 0; s < n; s++ {
				if target[s] || res.Strategy[s] < 0 {
					continue
				}
				c := m.Choices(StateID(s))[res.Strategy[s]]
				v := c.Reward
				for _, tr := range c.Transitions {
					v += tr.P * vals[tr.To]
				}
				if d := math.Abs(v - vals[s]); d > delta {
					delta = d
				}
				vals[s] = v
			}
			if delta < 1e-10 {
				break
			}
		}
		for s := 0; s < n; s++ {
			if math.IsInf(res.Values[s], 1) {
				continue
			}
			if math.Abs(vals[s]-res.Values[s]) > 1e-5 {
				t.Fatalf("trial %d: policy value %v != optimal %v at state %d",
					trial, vals[s], res.Values[s], s)
			}
		}
	}
}

// TestMaxProbValuesBounded: Pmax values of random MDPs are within [0,1] and
// monotone under adding a choice (property-style check).
func TestMaxProbValuesBounded(t *testing.T) {
	src := randx.New(321)
	for trial := 0; trial < 20; trial++ {
		m, target := randomMDP(src.SplitN("t", trial), 30, 2)
		res, err := m.MaxReachProb(target, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for s, v := range res.Values {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("trial %d: Pmax(%d) = %v out of [0,1]", trial, s, v)
			}
		}
		// The forward chain guarantees reachability: Pmax(s) = 1.
		for s, v := range res.Values {
			if math.Abs(v-1) > 1e-6 {
				t.Fatalf("trial %d: Pmax(%d) = %v, want 1 (chain exists)", trial, s, v)
			}
		}
	}
}

func TestLabelLengthMismatch(t *testing.T) {
	m := chainMDP(3)
	if _, err := m.MaxReachProb([]bool{true}, nil, SolveOptions{}); err == nil {
		t.Error("short target vector accepted")
	}
	if _, err := m.MinExpectedReward([]bool{true}, nil, SolveOptions{}); err == nil {
		t.Error("short target vector accepted")
	}
}

func TestSolverMethodString(t *testing.T) {
	if GaussSeidel.String() != "gauss-seidel" || Jacobi.String() != "jacobi" {
		t.Error("method names wrong")
	}
}

func TestDeadlockStateHandled(t *testing.T) {
	m := New()
	s0 := m.AddState()
	dead := m.AddState()
	goal := m.AddState()
	m.AddChoice(s0, 0, 1, []Transition{{To: dead, P: 0.5}, {To: goal, P: 0.5}})
	target := []bool{false, false, true}
	res, err := m.MaxReachProb(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[dead] != 0 {
		t.Error("deadlock state must have Pmax 0")
	}
	if math.Abs(res.Values[s0]-0.5) > 1e-9 {
		t.Errorf("Pmax(s0) = %v, want 0.5", res.Values[s0])
	}
	rres, err := m.MinExpectedReward(target, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rres.Values[s0], 1) {
		t.Error("s0 cannot reach goal a.s. through a possible deadlock")
	}
	_ = dead
}
