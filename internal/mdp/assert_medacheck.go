//go:build medacheck

package mdp

// assertValid runs full model validation at every solver entry point when
// built with the medacheck tag (see internal/modelcheck): a malformed model
// panics immediately instead of converging to a plausible wrong value.
func assertValid(m *MDP) {
	if err := m.Validate(); err != nil {
		panic("mdp: medacheck: " + err.Error())
	}
}
