// Exact policy evaluation: given a memoryless strategy, the MDP collapses
// to a Markov chain whose hitting probabilities and expected rewards are
// computed by the same iterative machinery as the optimization — used to
// audit synthesized strategies ("does the extracted policy really achieve
// the reported value?") and to compare hand-written heuristics against the
// optimum.
package mdp

import (
	"errors"
	"math"
)

// EvaluatePolicyReward computes the expected accumulated reward until
// reaching a target state when every state follows the fixed strategy.
// States where the strategy selects nothing (or whose policy walks into a
// dead end) evaluate to +Inf unless they are targets.
func (m *MDP) EvaluatePolicyReward(st Strategy, target []bool, opt SolveOptions) ([]float64, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || len(st) != n {
		return nil, errors.New("mdp: vector length mismatch")
	}
	// Almost-sure reachability under the fixed policy: greatest fixpoint
	// restricted to the policy's single choice per state.
	as := make([]bool, n)
	for s := 0; s < n; s++ {
		as[s] = true
	}
	tmp := make([]bool, n)
	for {
		for s := 0; s < n; s++ {
			tmp[s] = as[s] && target[s]
		}
		for changed := true; changed; {
			changed = false
			for s := 0; s < n; s++ {
				if !as[s] || tmp[s] || st[s] < 0 || st[s] >= len(m.choices[s]) {
					continue
				}
				c := m.choices[s][st[s]]
				stays, hits := true, false
				for _, tr := range c.Transitions {
					if IsZeroProb(tr.P) {
						continue
					}
					if !as[tr.To] {
						stays = false
						break
					}
					if tmp[tr.To] {
						hits = true
					}
				}
				if stays && hits {
					tmp[s] = true
					changed = true
				}
			}
		}
		same := true
		for s := 0; s < n; s++ {
			if as[s] != tmp[s] {
				same = false
			}
			as[s] = tmp[s]
		}
		if same {
			break
		}
	}

	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if !as[s] {
			vals[s] = math.Inf(1)
		}
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if target[s] || !as[s] || st[s] < 0 {
				continue
			}
			c := m.choices[s][st[s]]
			v := c.Reward
			for _, tr := range c.Transitions {
				if IsZeroProb(tr.P) {
					continue
				}
				v += tr.P * vals[tr.To]
			}
			if d := math.Abs(v - vals[s]); d > delta {
				delta = d
			}
			vals[s] = v
		}
		if delta < opt.Eps {
			return vals, nil
		}
	}
	return nil, ErrNoConvergence
}

// EvaluatePolicyReach computes the probability of reaching a target state
// under the fixed strategy, with avoid states losing.
func (m *MDP) EvaluatePolicyReach(st Strategy, target, avoid []bool, opt SolveOptions) ([]float64, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || len(st) != n || (avoid != nil && len(avoid) != n) {
		return nil, errors.New("mdp: vector length mismatch")
	}
	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if target[s] && (avoid == nil || !avoid[s]) {
			vals[s] = 1
		}
	}
	frozen := func(s int) bool {
		return target[s] || (avoid != nil && avoid[s]) || st[s] < 0 || st[s] >= len(m.choices[s])
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if frozen(s) {
				continue
			}
			c := m.choices[s][st[s]]
			v := 0.0
			for _, tr := range c.Transitions {
				v += tr.P * vals[tr.To]
			}
			if d := math.Abs(v - vals[s]); d > delta {
				delta = d
			}
			vals[s] = v
		}
		if delta < opt.Eps {
			return vals, nil
		}
	}
	return nil, ErrNoConvergence
}
