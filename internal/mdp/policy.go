// Exact policy evaluation: given a memoryless strategy, the MDP collapses
// to a Markov chain whose hitting probabilities and expected rewards are
// computed by the same iterative machinery as the optimization — used to
// audit synthesized strategies ("does the extracted policy really achieve
// the reported value?") and to compare hand-written heuristics against the
// optimum. Both storage modes evaluate over the CSR flattening.
package mdp

import (
	"errors"
	"math"
)

// EvaluatePolicyReward computes the expected accumulated reward until
// reaching a target state when every state follows the fixed strategy.
// States where the strategy selects nothing (or whose policy walks into a
// dead end) evaluate to +Inf unless they are targets.
func (m *MDP) EvaluatePolicyReward(st Strategy, target []bool, opt SolveOptions) ([]float64, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || len(st) != n {
		return nil, errors.New("mdp: vector length mismatch")
	}
	g := m.flatten()
	// choice[s] is the global CSR choice id selected in s, or -1.
	choice := make([]int32, n)
	for s := 0; s < n; s++ {
		choice[s] = -1
		if st[s] >= 0 && int32(st[s]) < g.stateOff[s+1]-g.stateOff[s] {
			choice[s] = g.stateOff[s] + int32(st[s])
		}
	}
	// Almost-sure reachability under the fixed policy: greatest fixpoint
	// restricted to the policy's single choice per state.
	as := make([]bool, n)
	for s := 0; s < n; s++ {
		as[s] = true
	}
	tmp := make([]bool, n)
	for {
		for s := 0; s < n; s++ {
			tmp[s] = as[s] && target[s]
		}
		for changed := true; changed; {
			changed = false
			for s := 0; s < n; s++ {
				if !as[s] || tmp[s] || choice[s] < 0 {
					continue
				}
				ci := choice[s]
				stays, hits := true, false
				for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
					if IsZeroProb(g.probs[ti]) {
						continue
					}
					if !as[g.tos[ti]] {
						stays = false
						break
					}
					if tmp[g.tos[ti]] {
						hits = true
					}
				}
				if stays && hits {
					tmp[s] = true
					changed = true
				}
			}
		}
		same := true
		for s := 0; s < n; s++ {
			if as[s] != tmp[s] {
				same = false
			}
			as[s] = tmp[s]
		}
		if same {
			break
		}
	}

	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if !as[s] {
			vals[s] = math.Inf(1)
		}
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if target[s] || !as[s] || choice[s] < 0 {
				continue
			}
			ci := choice[s]
			v := g.rewards[ci]
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if IsZeroProb(g.probs[ti]) {
					continue
				}
				v += g.probs[ti] * vals[g.tos[ti]]
			}
			if d := math.Abs(v - vals[s]); d > delta {
				delta = d
			}
			vals[s] = v
		}
		if delta < opt.Eps {
			return vals, nil
		}
	}
	return nil, ErrNoConvergence
}

// EvaluatePolicyReach computes the probability of reaching a target state
// under the fixed strategy, with avoid states losing.
func (m *MDP) EvaluatePolicyReach(st Strategy, target, avoid []bool, opt SolveOptions) ([]float64, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || len(st) != n || (avoid != nil && len(avoid) != n) {
		return nil, errors.New("mdp: vector length mismatch")
	}
	g := m.flatten()
	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if target[s] && (avoid == nil || !avoid[s]) {
			vals[s] = 1
		}
	}
	frozen := func(s int) bool {
		return target[s] || (avoid != nil && avoid[s]) ||
			st[s] < 0 || int32(st[s]) >= g.stateOff[s+1]-g.stateOff[s]
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if frozen(s) {
				continue
			}
			ci := g.stateOff[s] + int32(st[s])
			v := 0.0
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				v += g.probs[ti] * vals[g.tos[ti]]
			}
			if d := math.Abs(v - vals[s]); d > delta {
				delta = d
			}
			vals[s] = v
		}
		if delta < opt.Eps {
			return vals, nil
		}
	}
	return nil, ErrNoConvergence
}
