// Arena-style model construction. The AddState/AddChoice API of mdp.go
// grows a pointer-chasing [][]Choice graph — convenient, but every choice
// and transition slice is a separate heap object, and building one routing
// model costs tens of thousands of allocations. Builder writes the model
// straight into the CSR slabs the solvers consume: states, choices and
// transitions are appended to flat arrays that are grown in place and, via
// Reset, recycled across builds, so a warmed Builder constructs a model of
// any previously seen size with zero allocations.
//
// The price is a construction discipline: choices must be added in
// non-decreasing state order (the CSR layout keeps a state's choices
// contiguous), and the *MDP returned by Build aliases the Builder's slabs —
// it is valid only until the next Reset. Models that must outlive the
// Builder (or be solved concurrently) should use the classic API instead.
package mdp

// Builder constructs CSR-backed MDPs with reusable memory. The zero value
// is ready for use after Reset; a Builder must not be used from multiple
// goroutines, and neither may the model it built (the solver scratch slabs
// are shared with the Builder).
type Builder struct {
	g       csr
	nStates int
	built   bool
}

// Reset discards the model under construction (and any model previously
// built) while retaining slab capacity for the next build.
//
//meda:hotpath
func (b *Builder) Reset() {
	b.nStates = 0
	b.built = false
	g := &b.g
	g.n = 0
	g.stateOff = append(g.stateOff[:0], 0)
	g.choiceOff = g.choiceOff[:0]
	g.actions = g.actions[:0]
	g.rewards = g.rewards[:0]
	g.tos = g.tos[:0]
	g.probs = g.probs[:0]
	g.revBuilt = false
	g.slBuilt = false
}

// AddStates reserves n fresh states and returns the id of the first.
//
//meda:hotpath
func (b *Builder) AddStates(n int) StateID {
	if len(b.g.stateOff) == 0 {
		b.Reset()
	}
	first := StateID(b.nStates)
	b.nStates += n
	return first
}

// AddState reserves one fresh state and returns its id.
//
//meda:hotpath
func (b *Builder) AddState() StateID { return b.AddStates(1) }

// NumStates returns the number of states reserved so far.
//
//meda:hotpath
func (b *Builder) NumStates() int { return b.nStates }

// BeginChoice opens a choice of state s; the following Transition calls
// populate its distribution. Choices must be added in non-decreasing state
// order, and s must already be reserved.
//
//meda:hotpath
func (b *Builder) BeginChoice(s StateID, action int, reward float64) {
	if b.built {
		panic("mdp: Builder.BeginChoice after Build; Reset first")
	}
	si := int(s)
	if si < 0 || si >= b.nStates {
		panic("mdp: Builder.BeginChoice on unreserved state")
	}
	if si < len(b.g.stateOff)-1 {
		panic("mdp: Builder choices must be added in non-decreasing state order")
	}
	ci := int32(len(b.g.actions))
	for len(b.g.stateOff)-1 < si {
		b.g.stateOff = append(b.g.stateOff, ci)
	}
	b.g.choiceOff = append(b.g.choiceOff, int32(len(b.g.tos)))
	b.g.actions = append(b.g.actions, int32(action))
	b.g.rewards = append(b.g.rewards, reward)
}

// Transition appends one probabilistic edge to the currently open choice.
//
//meda:hotpath
func (b *Builder) Transition(to StateID, p float64) {
	if len(b.g.actions) == 0 {
		panic("mdp: Builder.Transition before BeginChoice")
	}
	b.g.tos = append(b.g.tos, int32(to))
	b.g.probs = append(b.g.probs, p)
}

// Build finalizes the CSR offsets and returns the model. The returned *MDP
// aliases the Builder's slabs: it is valid until the next Reset, and must
// not be solved concurrently with itself or with a later build.
func (b *Builder) Build() *MDP {
	g := &b.g
	if len(g.stateOff) == 0 {
		b.Reset()
	}
	if b.built {
		panic("mdp: Builder.Build called twice; Reset first")
	}
	b.built = true
	nc := int32(len(g.actions))
	for len(g.stateOff)-1 < b.nStates {
		g.stateOff = append(g.stateOff, nc)
	}
	g.choiceOff = append(g.choiceOff, int32(len(g.tos)))
	g.n = b.nStates
	return &MDP{numTr: len(g.tos), flat: g}
}
