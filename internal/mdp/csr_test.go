package mdp

import (
	"errors"
	"math"
	"testing"

	"meda/internal/randx"
)

// randomMDP builds a structurally valid random MDP: n states, 1–4 choices
// per state, 1–3 transitions per choice with normalized probabilities, a
// random target/avoid labeling. Target states are made absorbing so Rmin is
// finite somewhere.
func randomLabeledMDP(n int, src *randx.Source) (*MDP, []bool, []bool) {
	m := New()
	m.AddStates(n)
	target := make([]bool, n)
	avoid := make([]bool, n)
	for s := 0; s < n; s++ {
		switch src.IntN(10) {
		case 0:
			target[s] = true
		case 1:
			avoid[s] = true
		}
	}
	for s := 0; s < n; s++ {
		nc := 1 + src.IntN(4)
		for c := 0; c < nc; c++ {
			nt := 1 + src.IntN(3)
			trs := make([]Transition, nt)
			total := 0.0
			for t := range trs {
				trs[t].To = StateID(src.IntN(n))
				w := src.Float64() + 0.05
				trs[t].P = w
				total += w
			}
			for t := range trs {
				trs[t].P /= total
			}
			m.AddChoice(StateID(s), c, src.Float64()*3, trs)
		}
	}
	return m, target, avoid
}

// referenceProb1E is the original forward-scan fixpoint, kept in the test as
// the oracle for the CSR worklist implementation.
func referenceProb1E(m *MDP, target, avoid []bool) []bool {
	n := m.NumStates()
	inU := make([]bool, n)
	for s := 0; s < n; s++ {
		inU[s] = avoid == nil || !avoid[s]
	}
	inR := make([]bool, n)
	for {
		for s := 0; s < n; s++ {
			inR[s] = inU[s] && target[s]
		}
		for changed := true; changed; {
			changed = false
			for s := 0; s < n; s++ {
				if !inU[s] || inR[s] {
					continue
				}
			choiceLoop:
				for _, c := range m.Choices(StateID(s)) {
					hits := false
					for _, tr := range c.Transitions {
						if tr.P == 0 {
							continue
						}
						if !inU[tr.To] {
							continue choiceLoop
						}
						if inR[tr.To] {
							hits = true
						}
					}
					if hits {
						inR[s] = true
						changed = true
						break
					}
				}
			}
		}
		same := true
		for s := 0; s < n; s++ {
			if inU[s] != inR[s] {
				same = false
			}
			inU[s] = inR[s]
		}
		if same {
			return inU
		}
	}
}

func TestProb1EMatchesReference(t *testing.T) {
	src := randx.New(7)
	for trial := 0; trial < 40; trial++ {
		m, target, avoid := randomLabeledMDP(20+src.IntN(60), src.SplitN("mdp", trial))
		got := m.Prob1E(target, avoid)
		want := referenceProb1E(m, target, avoid)
		for s := range got {
			if got[s] != want[s] {
				t.Fatalf("trial %d: Prob1E disagrees at state %d: got %v want %v", trial, s, got[s], want[s])
			}
		}
	}
}

// TestJacobiParallelMatchesGaussSeidel is the differential test of the CSR
// engine: on randomized MDPs, the chunk-parallel Jacobi solver must agree
// with sequential Gauss-Seidel — values within tolerance, and identical
// strategy picks wherever the optimum is unique by a clear margin.
func TestJacobiParallelMatchesGaussSeidel(t *testing.T) {
	src := randx.New(11)
	for trial := 0; trial < 30; trial++ {
		m, target, avoid := randomLabeledMDP(30+src.IntN(70), src.SplitN("mdp", trial))
		gs := SolveOptions{Method: GaussSeidel, Eps: 1e-12}
		jac := SolveOptions{Method: Jacobi, Eps: 1e-12, Workers: 4}

		rg, err := m.MaxReachProb(target, avoid, gs)
		if err != nil {
			t.Fatal(err)
		}
		rj, err := m.MaxReachProb(target, avoid, jac)
		if err != nil {
			t.Fatal(err)
		}
		compareSolves(t, m, rg, rj, false)

		eg, err := m.MinExpectedReward(target, avoid, gs)
		if err != nil {
			t.Fatal(err)
		}
		ej, err := m.MinExpectedReward(target, avoid, jac)
		if err != nil {
			t.Fatal(err)
		}
		compareSolves(t, m, eg, ej, true)
	}
}

// compareSolves checks value agreement everywhere and strategy agreement at
// states where the Bellman optimum is unique by a 1e-6 margin.
func compareSolves(t *testing.T, m *MDP, a, b Result, minimize bool) {
	t.Helper()
	const tol = 1e-6
	for s := range a.Values {
		va, vb := a.Values[s], b.Values[s]
		if math.IsInf(va, 1) != math.IsInf(vb, 1) {
			t.Fatalf("state %d: finiteness disagrees (%v vs %v)", s, va, vb)
		}
		if !math.IsInf(va, 1) && math.Abs(va-vb) > tol {
			t.Fatalf("state %d: values disagree (%v vs %v)", s, va, vb)
		}
		if uniqueOptimum(m, StateID(s), a.Values, minimize) && a.Strategy[s] != b.Strategy[s] {
			t.Fatalf("state %d: unique optimal choice but strategies disagree (%d vs %d)",
				s, a.Strategy[s], b.Strategy[s])
		}
	}
}

// uniqueOptimum reports whether exactly one choice of s attains the Bellman
// optimum under vals, with every other choice worse by > 1e-6.
func uniqueOptimum(m *MDP, s StateID, vals []float64, minimize bool) bool {
	cs := m.Choices(s)
	if len(cs) < 2 {
		return false
	}
	best, second := math.Inf(1), math.Inf(1)
	for _, c := range cs {
		v := 0.0
		if minimize {
			v = c.Reward
		}
		for _, tr := range c.Transitions {
			if tr.P == 0 {
				continue
			}
			v += tr.P * vals[tr.To]
		}
		if !minimize {
			v = -v
		}
		if v < best {
			best, second = v, best
		} else if v < second {
			second = v
		}
	}
	return second-best > 1e-6 && !math.IsInf(second, 1)
}

// TestJacobiWorkerCountInvariance: the parallel sweep must be bit-identical
// regardless of how many workers split it.
func TestJacobiWorkerCountInvariance(t *testing.T) {
	m, target, avoid := randomLabeledMDP(120, randx.New(13))
	var base Result
	for i, w := range []int{1, 2, 3, 8} {
		res, err := m.MinExpectedReward(target, avoid, SolveOptions{Method: Jacobi, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.Iterations != base.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", w, res.Iterations, base.Iterations)
		}
		for s := range res.Values {
			if res.Values[s] != base.Values[s] && !(math.IsInf(res.Values[s], 1) && math.IsInf(base.Values[s], 1)) {
				t.Fatalf("workers=%d: value at %d differs: %v vs %v", w, s, res.Values[s], base.Values[s])
			}
			if res.Strategy[s] != base.Strategy[s] {
				t.Fatalf("workers=%d: strategy at %d differs", w, s)
			}
		}
	}
}

// TestSweepWorkersLowParallelismFallback pins the clamp that keeps parallel
// Jacobi from fanning tiny models out to idle goroutines: every worker must
// get at least minChunk (512) states, so small models always fall back to a
// single sequential sweep no matter how many workers were requested, and the
// worker count never exceeds ceil(n/512).
func TestSweepWorkersLowParallelismFallback(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{8, 100, 1},    // model smaller than one chunk: sequential
		{64, 511, 1},   // just under one chunk: still sequential
		{64, 512, 1},   // exactly one chunk
		{64, 513, 2},   // two chunks at most
		{64, 1300, 3},  // ceil(1300/512)
		{2, 100000, 2}, // explicit request below the clamp is honored
		{1, 100000, 1}, // explicit sequential
		{8, 0, 1},      // empty model: degenerate but must not return 0
		{-3, 512, 1},   // negative → GOMAXPROCS, then clamped to one chunk
	}
	for _, c := range cases {
		if got := sweepWorkers(SolveOptions{Workers: c.workers}, c.n); got != c.want {
			t.Errorf("sweepWorkers(workers=%d, n=%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	// The fallback must be behavior-preserving, not just a count: a model
	// under one chunk solved with a large worker request matches the
	// explicitly sequential solve exactly.
	m, target, avoid := randomLabeledMDP(120, randx.New(31))
	many, err := m.MinExpectedReward(target, avoid, SolveOptions{Method: Jacobi, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.MinExpectedReward(target, avoid, SolveOptions{Method: Jacobi, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if many.Iterations != one.Iterations {
		t.Fatalf("worker fan-out changed iteration count: %d vs %d", many.Iterations, one.Iterations)
	}
	for s := range many.Values {
		if many.Values[s] != one.Values[s] && !(math.IsInf(many.Values[s], 1) && math.IsInf(one.Values[s], 1)) {
			t.Fatalf("state %d: %v with 64 workers vs %v with 1", s, many.Values[s], one.Values[s])
		}
	}
}

// TestConvergenceErrorDetail: an exhausted iteration must name the offending
// state and still match errors.Is(…, ErrNoConvergence).
func TestConvergenceErrorDetail(t *testing.T) {
	// Two states feeding each other with reward 1 and a 1e-6 leak to the
	// target: converges very slowly, so MaxIter=3 exhausts.
	m := New()
	a := m.AddState()
	b := m.AddState()
	goal := m.AddState()
	m.AddChoice(a, 7, 1, []Transition{{To: b, P: 1 - 1e-6}, {To: goal, P: 1e-6}})
	m.AddChoice(b, 8, 1, []Transition{{To: a, P: 1 - 1e-6}, {To: goal, P: 1e-6}})
	m.AddChoice(goal, -1, 0, []Transition{{To: goal, P: 1}})
	target := []bool{false, false, true}
	for _, method := range []SolverMethod{GaussSeidel, Jacobi} {
		_, err := m.MinExpectedReward(target, nil, SolveOptions{Method: method, MaxIter: 3})
		if !errors.Is(err, ErrNoConvergence) {
			t.Fatalf("%v: err = %v, want ErrNoConvergence", method, err)
		}
		var ce *ConvergenceError
		if !errors.As(err, &ce) {
			t.Fatalf("%v: err = %v, want *ConvergenceError", method, err)
		}
		if ce.State != a && ce.State != b {
			t.Errorf("%v: offending state = %d, want %d or %d", method, ce.State, a, b)
		}
		if ce.Action != 7 && ce.Action != 8 {
			t.Errorf("%v: offending action = %d, want 7 or 8", method, ce.Action)
		}
		if ce.Iterations != 3 || ce.Delta <= 0 {
			t.Errorf("%v: iterations=%d delta=%v", method, ce.Iterations, ce.Delta)
		}
	}
}

// TestValidateNamesAction: validation failures must carry the action id.
func TestValidateNamesAction(t *testing.T) {
	m := New()
	s := m.AddState()
	m.AddChoice(s, 42, 1, []Transition{{To: s, P: 0.5}})
	err := m.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	if want := "action 42"; !contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
