package mdp

// CSRView is a read-only window onto the flattened (CSR) form of the model,
// including the lazily built reverse-edge index, for external invariant
// checking (internal/modelcheck). The slices are freshly flattened on each
// call and safe to inspect, but mutating them has no effect on the MDP.
type CSRView struct {
	// NumStates is |S|; offsets below are as documented on the internal
	// csr type: choices of state s are [StateOff[s], StateOff[s+1]),
	// transitions of choice c are [ChoiceOff[c], ChoiceOff[c+1]).
	NumStates int
	StateOff  []int32
	ChoiceOff []int32
	Actions   []int32   // per choice: caller-supplied action id
	Rewards   []float64 // per choice
	Tos       []int32   // per transition: successor state
	Probs     []float64 // per transition

	// Reverse-edge index over positive-probability transitions: the global
	// choice ids with an edge into state t are RevChoice[RevOff[t]:
	// RevOff[t+1]], and ChoiceState maps a global choice id to its owning
	// state. This is the exact index Prob1E and strategy extraction walk,
	// so checking it validates the solver's substrate, not a re-derivation.
	RevOff      []int32
	RevChoice   []int32
	ChoiceState []int32
}

// CSR flattens the model and builds the reverse-edge index, exactly as the
// solvers do, and exposes the result. Transition targets must be in range
// (Validate), or the reverse-index construction will panic; callers
// checking untrusted models should run Validate first.
func (m *MDP) CSR() CSRView {
	g := m.flatten()
	g.reverseIndex()
	return CSRView{
		NumStates:   g.n,
		StateOff:    g.stateOff,
		ChoiceOff:   g.choiceOff,
		Actions:     g.actions,
		Rewards:     g.rewards,
		Tos:         g.tos,
		Probs:       g.probs,
		RevOff:      g.revOff,
		RevChoice:   g.revChoice,
		ChoiceState: g.choiceState,
	}
}
