// Package mdp provides an explicit-state Markov decision process engine with
// the two solvers the paper's synthesis framework obtains from PRISM-games
// (Sec. VI-C):
//
//   - maximum reachability probability, Pmax=? [◇goal] (with an optional
//     safety constraint □¬hazard folded in by making hazard states losing),
//     solved by value iteration from below, and
//   - minimum expected total reward to reach a goal, Rmin=? [◇goal], the
//     stochastic-shortest-path problem, solved by qualitative almost-sure
//     reachability analysis (Prob1E) followed by value iteration.
//
// After the paper's partial-order reduction fixes the health matrix, the
// per-routing-job model is exactly an MDP, so these two solvers cover every
// synthesis query the framework issues. Both return memoryless deterministic
// strategies, which are optimal for these objectives.
package mdp

import (
	"errors"
	"fmt"
	"math"
)

// StateID indexes a state of the MDP.
type StateID int

// Transition is one probabilistic edge of a choice.
type Transition struct {
	To StateID
	P  float64
}

// Choice is one nondeterministic action available in a state: an opaque
// caller-supplied action identifier, an action reward (cost), and a
// probability distribution over successor states.
type Choice struct {
	Action      int
	Reward      float64
	Transitions []Transition
}

// MDP is an explicit-state Markov decision process under construction or
// analysis. The zero value is an empty MDP ready for AddState.
type MDP struct {
	choices [][]Choice
	numTr   int
}

// New returns an empty MDP.
func New() *MDP { return &MDP{} }

// AddState appends a fresh state and returns its id.
func (m *MDP) AddState() StateID {
	m.choices = append(m.choices, nil)
	return StateID(len(m.choices) - 1)
}

// AddStates appends n fresh states and returns the id of the first.
func (m *MDP) AddStates(n int) StateID {
	first := StateID(len(m.choices))
	for i := 0; i < n; i++ {
		m.choices = append(m.choices, nil)
	}
	return first
}

// AddChoice attaches a choice to a state. Transition probabilities are the
// caller's responsibility until Validate is called.
func (m *MDP) AddChoice(s StateID, action int, reward float64, trs []Transition) {
	m.choices[s] = append(m.choices[s], Choice{Action: action, Reward: reward, Transitions: trs})
	m.numTr += len(trs)
}

// NumStates returns |S|.
func (m *MDP) NumStates() int { return len(m.choices) }

// NumChoices returns the total number of state-action choices, the quantity
// PRISM reports as "choices".
func (m *MDP) NumChoices() int {
	n := 0
	for _, cs := range m.choices {
		n += len(cs)
	}
	return n
}

// NumTransitions returns the total number of probabilistic transitions, the
// quantity PRISM reports as "transitions".
func (m *MDP) NumTransitions() int { return m.numTr }

// Choices returns the choices of a state (shared slice; do not mutate).
func (m *MDP) Choices(s StateID) []Choice { return m.choices[s] }

// Validate checks structural sanity: transition targets in range,
// probabilities in [0,1] summing to 1 per choice (within eps), non-negative
// rewards.
func (m *MDP) Validate() error {
	const eps = 1e-9
	for s, cs := range m.choices {
		for ci, c := range cs {
			if len(c.Transitions) == 0 {
				return fmt.Errorf("mdp: state %d choice %d has no transitions", s, ci)
			}
			if c.Reward < 0 {
				return fmt.Errorf("mdp: state %d choice %d has negative reward", s, ci)
			}
			total := 0.0
			for _, tr := range c.Transitions {
				if tr.To < 0 || int(tr.To) >= len(m.choices) {
					return fmt.Errorf("mdp: state %d choice %d targets out-of-range state %d", s, ci, tr.To)
				}
				if tr.P < -eps || tr.P > 1+eps {
					return fmt.Errorf("mdp: state %d choice %d has probability %v", s, ci, tr.P)
				}
				total += tr.P
			}
			if math.Abs(total-1) > 1e-6 {
				return fmt.Errorf("mdp: state %d choice %d probabilities sum to %v", s, ci, total)
			}
		}
	}
	return nil
}

// Strategy is a memoryless deterministic strategy: for each state, the index
// into Choices(s) of the selected choice, or -1 where no choice is selected
// (target, avoided, or unreachable states).
type Strategy []int

// Action returns the caller-supplied action id selected in state s, or
// (0, false) if the strategy selects nothing there.
func (st Strategy) Action(m *MDP, s StateID) (int, bool) {
	if int(s) >= len(st) || st[s] < 0 {
		return 0, false
	}
	return m.Choices(s)[st[s]].Action, true
}

// SolverMethod selects the value-iteration flavor.
type SolverMethod int

const (
	// GaussSeidel updates values in place, typically converging in fewer
	// sweeps; this is the default.
	GaussSeidel SolverMethod = iota
	// Jacobi performs synchronous sweeps from the previous iterate.
	Jacobi
)

// String names the method.
func (m SolverMethod) String() string {
	if m == Jacobi {
		return "jacobi"
	}
	return "gauss-seidel"
}

// SolveOptions tunes the iterative solvers.
type SolveOptions struct {
	Method  SolverMethod
	Eps     float64 // convergence threshold on the max-norm; default 1e-9
	MaxIter int     // iteration cap; default 1e6
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1_000_000
	}
	return o
}

// Result carries a solver outcome.
type Result struct {
	Values     []float64
	Strategy   Strategy
	Iterations int
}

// ErrNoConvergence is returned when value iteration hits the iteration cap.
var ErrNoConvergence = errors.New("mdp: value iteration did not converge")

// MaxReachProb computes Pmax(s ⊨ ◇target) for every state, treating avoid
// states as losing (their value is pinned to 0 and their choices ignored),
// which encodes Pmax=?[□¬avoid ∧ ◇target] for label-closed avoid sets. The
// returned strategy maximizes the probability.
func (m *MDP) MaxReachProb(target, avoid []bool, opt SolveOptions) (Result, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || (avoid != nil && len(avoid) != n) {
		return Result{}, errors.New("mdp: label vector length mismatch")
	}
	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if target[s] && (avoid == nil || !avoid[s]) {
			vals[s] = 1
		}
	}
	frozen := func(s int) bool {
		return target[s] || (avoid != nil && avoid[s]) || len(m.choices[s]) == 0
	}
	var prev []float64
	if opt.Method == Jacobi {
		prev = make([]float64, n)
	}
	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		delta := 0.0
		src := vals
		if opt.Method == Jacobi {
			copy(prev, vals)
			src = prev
		}
		for s := 0; s < n; s++ {
			if frozen(s) {
				continue
			}
			best := 0.0
			for _, c := range m.choices[s] {
				v := 0.0
				for _, tr := range c.Transitions {
					v += tr.P * src[tr.To]
				}
				if v > best {
					best = v
				}
			}
			if d := math.Abs(best - vals[s]); d > delta {
				delta = d
			}
			vals[s] = best
		}
		if delta < opt.Eps {
			iters++
			break
		}
	}
	if iters >= opt.MaxIter {
		return Result{}, ErrNoConvergence
	}
	// Extract an optimal *proper* strategy. Picking any value-maximizing
	// choice is not enough for reachability: two value-1 states can
	// maximize by cycling between each other forever. Build the policy
	// backward from the target instead — a state adopts a maximizing
	// choice only once that choice has a positive-probability transition
	// to an already-resolved state, so every step makes progress.
	strat := make(Strategy, n)
	for s := 0; s < n; s++ {
		strat[s] = -1
	}
	done := make([]bool, n)
	for s := 0; s < n; s++ {
		if target[s] && (avoid == nil || !avoid[s]) {
			done[s] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if done[s] || frozen(s) || vals[s] == 0 {
				continue
			}
			for ci, c := range m.choices[s] {
				v := 0.0
				progress := false
				for _, tr := range c.Transitions {
					v += tr.P * vals[tr.To]
					if tr.P > 0 && done[tr.To] {
						progress = true
					}
				}
				if progress && v >= vals[s]-1e-9 {
					strat[s] = ci
					done[s] = true
					changed = true
					break
				}
			}
		}
	}
	// States with Pmax = 0 get an arbitrary (first) choice so callers can
	// still walk the policy; it cannot matter.
	for s := 0; s < n; s++ {
		if strat[s] == -1 && !frozen(s) && len(m.choices[s]) > 0 {
			strat[s] = 0
		}
	}
	return Result{Values: vals, Strategy: strat, Iterations: iters}, nil
}

// Prob1E returns the set of states from which some strategy reaches a target
// state with probability 1 while never entering an avoid state. This is the
// standard qualitative algorithm (greatest fixpoint over a reach-closure),
// and it determines where Rmin=?[◇target] is finite.
func (m *MDP) Prob1E(target, avoid []bool) []bool {
	n := m.NumStates()
	inU := make([]bool, n)
	for s := 0; s < n; s++ {
		inU[s] = avoid == nil || !avoid[s]
	}
	inR := make([]bool, n)
	for {
		// Inner fixpoint: R = states in U that can reach target with
		// positive probability using choices that stay inside U.
		for s := 0; s < n; s++ {
			inR[s] = inU[s] && target[s]
		}
		for changed := true; changed; {
			changed = false
			for s := 0; s < n; s++ {
				if !inU[s] || inR[s] {
					continue
				}
			choiceLoop:
				for _, c := range m.choices[s] {
					hits := false
					for _, tr := range c.Transitions {
						if tr.P == 0 {
							continue
						}
						if !inU[tr.To] {
							continue choiceLoop
						}
						if inR[tr.To] {
							hits = true
						}
					}
					if hits {
						inR[s] = true
						changed = true
						break
					}
				}
			}
		}
		same := true
		for s := 0; s < n; s++ {
			if inU[s] != inR[s] {
				same = false
			}
			inU[s] = inR[s]
		}
		if same {
			return inU
		}
	}
}

// MinExpectedReward computes Rmin(s ⊨ ◇target): the minimum expected
// accumulated choice reward until reaching a target state, with avoid states
// forbidden. States from which no strategy reaches the target almost surely
// (while avoiding) get +Inf. The returned strategy attains the minimum.
func (m *MDP) MinExpectedReward(target, avoid []bool, opt SolveOptions) (Result, error) {
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || (avoid != nil && len(avoid) != n) {
		return Result{}, errors.New("mdp: label vector length mismatch")
	}
	as := m.Prob1E(target, avoid)
	vals := make([]float64, n)
	for s := 0; s < n; s++ {
		if !as[s] {
			vals[s] = math.Inf(1)
		}
	}
	frozen := func(s int) bool {
		return target[s] || !as[s] || len(m.choices[s]) == 0
	}
	var prev []float64
	if opt.Method == Jacobi {
		prev = make([]float64, n)
	}
	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		delta := 0.0
		src := vals
		if opt.Method == Jacobi {
			copy(prev, vals)
			src = prev
		}
		for s := 0; s < n; s++ {
			if frozen(s) {
				continue
			}
			best := math.Inf(1)
			for _, c := range m.choices[s] {
				v := c.Reward
				for _, tr := range c.Transitions {
					if tr.P == 0 {
						continue
					}
					v += tr.P * src[tr.To]
				}
				if v < best {
					best = v
				}
			}
			if d := math.Abs(best - vals[s]); d > delta {
				delta = d
			}
			vals[s] = best
		}
		if delta < opt.Eps {
			iters++
			break
		}
	}
	if iters >= opt.MaxIter {
		return Result{}, ErrNoConvergence
	}
	strat := make(Strategy, n)
	for s := 0; s < n; s++ {
		strat[s] = -1
		if frozen(s) {
			continue
		}
		best, bi := math.Inf(1), -1
		for ci, c := range m.choices[s] {
			v := c.Reward
			for _, tr := range c.Transitions {
				if tr.P == 0 {
					continue
				}
				v += tr.P * vals[tr.To]
			}
			if v < best-1e-12 {
				best, bi = v, ci
			}
		}
		strat[s] = bi
	}
	return Result{Values: vals, Strategy: strat, Iterations: iters}, nil
}
