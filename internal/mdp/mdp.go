// Package mdp provides an explicit-state Markov decision process engine with
// the two solvers the paper's synthesis framework obtains from PRISM-games
// (Sec. VI-C):
//
//   - maximum reachability probability, Pmax=? [◇goal] (with an optional
//     safety constraint □¬hazard folded in by making hazard states losing),
//     solved by value iteration from below, and
//   - minimum expected total reward to reach a goal, Rmin=? [◇goal], the
//     stochastic-shortest-path problem, solved by qualitative almost-sure
//     reachability analysis (Prob1E) followed by value iteration.
//
// After the paper's partial-order reduction fixes the health matrix, the
// per-routing-job model is exactly an MDP, so these two solvers cover every
// synthesis query the framework issues. Both return memoryless deterministic
// strategies, which are optimal for these objectives.
package mdp

import (
	"errors"
	"fmt"
	"math"

	"meda/internal/telemetry"
)

// StateID indexes a state of the MDP.
type StateID int

// Transition is one probabilistic edge of a choice.
type Transition struct {
	To StateID
	P  float64
}

// Choice is one nondeterministic action available in a state: an opaque
// caller-supplied action identifier, an action reward (cost), and a
// probability distribution over successor states.
type Choice struct {
	Action      int
	Reward      float64
	Transitions []Transition
}

// MDP is an explicit-state Markov decision process under construction or
// analysis. The zero value is an empty MDP ready for AddState. Models come
// in two storage modes: the classic AddState/AddChoice API grows a
// list-backed graph, while Builder.Build returns a model backed directly by
// the builder's CSR slabs (flat != nil). Flat models are immutable and share
// solver scratch with their Builder, so they must not be solved
// concurrently; list-backed models flatten fresh per solve and may be.
type MDP struct {
	choices [][]Choice
	numTr   int
	flat    *csr // set for Builder-built models; nil for list-backed ones
}

// New returns an empty MDP.
func New() *MDP { return &MDP{} }

// AddState appends a fresh state and returns its id.
func (m *MDP) AddState() StateID {
	m.mutable()
	m.choices = append(m.choices, nil)
	return StateID(len(m.choices) - 1)
}

// AddStates appends n fresh states and returns the id of the first.
func (m *MDP) AddStates(n int) StateID {
	m.mutable()
	first := StateID(len(m.choices))
	for i := 0; i < n; i++ {
		m.choices = append(m.choices, nil)
	}
	return first
}

// AddChoice attaches a choice to a state. Transition probabilities are the
// caller's responsibility until Validate is called.
func (m *MDP) AddChoice(s StateID, action int, reward float64, trs []Transition) {
	m.mutable()
	m.choices[s] = append(m.choices[s], Choice{Action: action, Reward: reward, Transitions: trs})
	m.numTr += len(trs)
}

func (m *MDP) mutable() {
	if m.flat != nil {
		panic("mdp: cannot mutate a Builder-built model; use Builder.Reset and rebuild")
	}
}

// NumStates returns |S|.
func (m *MDP) NumStates() int {
	if m.flat != nil {
		return m.flat.n
	}
	return len(m.choices)
}

// NumChoices returns the total number of state-action choices, the quantity
// PRISM reports as "choices".
func (m *MDP) NumChoices() int {
	if m.flat != nil {
		return len(m.flat.actions)
	}
	n := 0
	for _, cs := range m.choices {
		n += len(cs)
	}
	return n
}

// NumTransitions returns the total number of probabilistic transitions, the
// quantity PRISM reports as "transitions".
func (m *MDP) NumTransitions() int { return m.numTr }

// Choices returns the choices of a state. For list-backed models this is the
// shared underlying slice (do not mutate); for Builder-built models the
// choices are materialized fresh from the CSR slabs on every call — fine for
// inspection and tests, but hot paths should use numChoicesOf/choiceAction.
func (m *MDP) Choices(s StateID) []Choice {
	if g := m.flat; g != nil {
		lo, hi := g.stateOff[s], g.stateOff[s+1]
		if lo == hi {
			return nil
		}
		out := make([]Choice, 0, hi-lo)
		for ci := lo; ci < hi; ci++ {
			trs := make([]Transition, 0, g.choiceOff[ci+1]-g.choiceOff[ci])
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				trs = append(trs, Transition{To: StateID(g.tos[ti]), P: g.probs[ti]})
			}
			out = append(out, Choice{Action: int(g.actions[ci]), Reward: g.rewards[ci], Transitions: trs})
		}
		return out
	}
	return m.choices[s]
}

// numChoicesOf returns the number of choices of one state without
// materializing them.
func (m *MDP) numChoicesOf(s StateID) int {
	if g := m.flat; g != nil {
		return int(g.stateOff[s+1] - g.stateOff[s])
	}
	return len(m.choices[s])
}

// choiceAction returns the caller-supplied action id of choice idx of state
// s without materializing the choice list.
func (m *MDP) choiceAction(s StateID, idx int) int {
	if g := m.flat; g != nil {
		return int(g.actions[int(g.stateOff[s])+idx])
	}
	return m.choices[s][idx].Action
}

// Validate checks structural sanity: transition targets in range,
// probabilities in [0,1] summing to 1 per choice (within eps), non-negative
// rewards. Errors name the state id, the choice index, and the
// caller-supplied action id, so a bad choice in a generated model can be
// traced back to the microfluidic action that produced it. Both storage
// modes validate over the same CSR walk.
func (m *MDP) Validate() error {
	const eps = 1e-9
	g := m.flatten()
	for s := 0; s < g.n; s++ {
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			idx := int(ci - g.stateOff[s])
			act := int(g.actions[ci])
			if g.choiceOff[ci] == g.choiceOff[ci+1] {
				return fmt.Errorf("mdp: state %d choice %d (action %d) has no transitions", s, idx, act)
			}
			if g.rewards[ci] < 0 {
				return fmt.Errorf("mdp: state %d choice %d (action %d) has negative reward %v", s, idx, act, g.rewards[ci])
			}
			total := 0.0
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if g.tos[ti] < 0 || int(g.tos[ti]) >= g.n {
					return fmt.Errorf("mdp: state %d choice %d (action %d) targets out-of-range state %d", s, idx, act, g.tos[ti])
				}
				if g.probs[ti] < -eps || g.probs[ti] > 1+eps {
					return fmt.Errorf("mdp: state %d choice %d (action %d) has probability %v", s, idx, act, g.probs[ti])
				}
				total += g.probs[ti]
			}
			if math.Abs(total-1) > 1e-6 {
				return fmt.Errorf("mdp: state %d choice %d (action %d) probabilities sum to %v", s, idx, act, total)
			}
		}
	}
	return nil
}

// Strategy is a memoryless deterministic strategy: for each state, the index
// into Choices(s) of the selected choice, or -1 where no choice is selected
// (target, avoided, or unreachable states).
type Strategy []int

// Action returns the caller-supplied action id selected in state s, or
// (0, false) if the strategy selects nothing there.
func (st Strategy) Action(m *MDP, s StateID) (int, bool) {
	if int(s) >= len(st) || st[s] < 0 {
		return 0, false
	}
	return m.choiceAction(s, st[s]), true
}

// SolverMethod selects the value-iteration flavor.
type SolverMethod int

const (
	// GaussSeidel updates values in place with alternating-direction
	// sweeps, typically converging in the fewest wall-clock cycles; this is
	// the default.
	GaussSeidel SolverMethod = iota
	// Jacobi performs synchronous sweeps from the previous iterate.
	Jacobi
	// Prioritized processes states goal-outward (Dijkstra order) from a
	// priority queue seeded backward from the frozen (target) states over
	// the reverse-edge index, touching only states whose successors
	// actually changed. On models where the settled region is a small
	// fraction of the state space it converges in a fraction of the Bellman
	// backups a full sweep spends; a full verification sweep on queue drain
	// guarantees the same max-norm convergence criterion as Gauss-Seidel.
	Prioritized
)

// String names the method.
func (m SolverMethod) String() string {
	switch m {
	case Jacobi:
		return "jacobi"
	case Prioritized:
		return "prioritized"
	default:
		return "gauss-seidel"
	}
}

// SolveOptions tunes the iterative solvers.
type SolveOptions struct {
	Method  SolverMethod
	Eps     float64 // convergence threshold on the max-norm; default 1e-9
	MaxIter int     // iteration cap; default 1e6
	// Workers bounds the goroutines used for Jacobi sweeps: 0 means
	// GOMAXPROCS, 1 forces a sequential sweep. Gauss-Seidel and the
	// prioritized solver update in place and are always sequential. The
	// Jacobi result is independent of Workers (each sweep reads only the
	// previous iterate), and small models collapse to the sequential sweep
	// regardless of Workers (see sweepWorkers).
	Workers int
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1_000_000
	}
	return o
}

// Result carries a solver outcome.
type Result struct {
	Values     []float64
	Strategy   Strategy
	Iterations int
}

// ErrNoConvergence is returned when value iteration hits the iteration cap.
// Solvers wrap it in a *ConvergenceError naming the offending state; match
// with errors.Is / errors.As.
var ErrNoConvergence = errors.New("mdp: value iteration did not converge")

// ConvergenceError reports where value iteration was still changing when it
// exhausted MaxIter: the state with the largest residual in the final sweep,
// the caller-supplied action id of that state's first choice (-1 when the
// state has none), and the residual itself.
type ConvergenceError struct {
	State      StateID
	Action     int
	Delta      float64
	Iterations int
}

// Error implements error.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("mdp: value iteration did not converge after %d iterations (state %d, action %d, residual %g)",
		e.Iterations, e.State, e.Action, e.Delta)
}

// Unwrap makes errors.Is(err, ErrNoConvergence) hold.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// MaxReachProb computes Pmax(s ⊨ ◇target) for every state, treating avoid
// states as losing (their value is pinned to 0 and their choices ignored),
// which encodes Pmax=?[□¬avoid ∧ ◇target] for label-closed avoid sets. The
// returned strategy maximizes the probability.
func (m *MDP) MaxReachProb(target, avoid []bool, opt SolveOptions) (Result, error) {
	sp := telemetry.StartSpan("mdp.max_reach_prob")
	defer sp.End()
	assertValid(m)
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || (avoid != nil && len(avoid) != n) {
		return Result{}, errors.New("mdp: label vector length mismatch")
	}
	g := m.flatten()
	vals := make([]float64, n)
	frozen := growB(g.scrFrozen, n)
	g.scrFrozen = frozen
	for s := 0; s < n; s++ {
		if target[s] && (avoid == nil || !avoid[s]) {
			vals[s] = 1
		}
		frozen[s] = target[s] || (avoid != nil && avoid[s]) || g.stateOff[s] == g.stateOff[s+1]
	}
	g.selfLoopInv()
	iters, err := g.iterate(vals, frozen, opt, +1, g.bellmanMaxSL)
	if err != nil {
		return Result{}, err
	}
	// Extract an optimal *proper* strategy. Picking any value-maximizing
	// choice is not enough for reachability: two value-1 states can
	// maximize by cycling between each other forever. Build the policy
	// backward from the target instead — a state adopts a maximizing
	// choice only once that choice has a positive-probability transition
	// to an already-resolved state, so every step makes progress. The
	// resolution front is propagated over the reverse-edge index: a state
	// is (re)examined only when one of its successors resolves, instead of
	// rescanning all states to fixpoint.
	g.reverseIndex()
	strat := make(Strategy, n)
	for s := 0; s < n; s++ {
		strat[s] = -1
	}
	done := growB(g.scrInR, n)
	g.scrInR = done
	queue := growI(g.scrQueue, n)[:0]
	for s := 0; s < n; s++ {
		done[s] = target[s] && (avoid == nil || !avoid[s])
		if done[s] {
			queue = append(queue, int32(s))
		}
	}
	// resolve adopts the first maximizing choice of s with a resolved
	// successor, reporting whether s became resolved.
	resolve := func(s int) bool {
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			v := 0.0
			progress := false
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				v += g.probs[ti] * vals[g.tos[ti]]
				if g.probs[ti] > 0 && done[g.tos[ti]] {
					progress = true
				}
			}
			if progress && v >= vals[s]-1e-9 {
				strat[s] = int(ci - g.stateOff[s])
				return true
			}
		}
		return false
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for ri := g.revOff[t]; ri < g.revOff[t+1]; ri++ {
			s := int(g.choiceState[g.revChoice[ri]])
			if done[s] || frozen[s] || IsZero(vals[s]) {
				continue
			}
			if resolve(s) {
				done[s] = true
				queue = append(queue, int32(s))
			}
		}
	}
	// States with Pmax = 0 get an arbitrary (first) choice so callers can
	// still walk the policy; it cannot matter.
	for s := 0; s < n; s++ {
		if strat[s] == -1 && !frozen[s] && g.stateOff[s] < g.stateOff[s+1] {
			strat[s] = 0
		}
	}
	return Result{Values: vals, Strategy: strat, Iterations: iters}, nil
}

// Prob1E returns the set of states from which some strategy reaches a target
// state with probability 1 while never entering an avoid state. This is the
// standard qualitative algorithm (greatest fixpoint over a reach-closure),
// and it determines where Rmin=?[◇target] is finite. The fixpoint runs over
// the CSR flattening with a reverse-edge worklist (see csr.go); the internal
// pass returns solver scratch, so this copies it for the caller.
func (m *MDP) Prob1E(target, avoid []bool) []bool {
	res := m.flatten().prob1E(target, avoid)
	out := make([]bool, len(res))
	copy(out, res)
	return out
}

// MinExpectedReward computes Rmin(s ⊨ ◇target): the minimum expected
// accumulated choice reward until reaching a target state, with avoid states
// forbidden. States from which no strategy reaches the target almost surely
// (while avoiding) get +Inf. The returned strategy attains the minimum.
func (m *MDP) MinExpectedReward(target, avoid []bool, opt SolveOptions) (Result, error) {
	sp := telemetry.StartSpan("mdp.min_expected_reward")
	defer sp.End()
	assertValid(m)
	opt = opt.withDefaults()
	n := m.NumStates()
	if len(target) != n || (avoid != nil && len(avoid) != n) {
		return Result{}, errors.New("mdp: label vector length mismatch")
	}
	g := m.flatten()
	as := g.prob1E(target, avoid)
	vals := make([]float64, n)
	frozen := growB(g.scrFrozen, n)
	g.scrFrozen = frozen
	for s := 0; s < n; s++ {
		if !as[s] {
			vals[s] = math.Inf(1)
		}
		frozen[s] = target[s] || !as[s] || g.stateOff[s] == g.stateOff[s+1]
	}
	g.selfLoopInv()
	iters, err := g.iterate(vals, frozen, opt, -1, g.bellmanMinSL)
	if err != nil {
		return Result{}, err
	}
	strat := make(Strategy, n)
	for s := 0; s < n; s++ {
		strat[s] = -1
		if frozen[s] {
			continue
		}
		best, bi := math.Inf(1), -1
		for ci := g.stateOff[s]; ci < g.stateOff[s+1]; ci++ {
			v := g.rewards[ci]
			for ti := g.choiceOff[ci]; ti < g.choiceOff[ci+1]; ti++ {
				if p := g.probs[ti]; p > 0 {
					v += p * vals[g.tos[ti]]
				}
			}
			if v < best-1e-12 {
				best, bi = v, int(ci-g.stateOff[s])
			}
		}
		strat[s] = bi
	}
	return Result{Values: vals, Strategy: strat, Iterations: iters}, nil
}
