package meda_test

import (
	"fmt"
	"strings"

	"meda"
)

// ExampleSynthesize synthesizes the running example's routing strategy on a
// healthy chip: a 3×3 droplet crossing a 10×10 region diagonally needs 7
// expected cycles.
func ExampleSynthesize() {
	rj := meda.RoutingJob{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 3, YB: 3},
		Goal:   meda.Rect{XA: 8, YA: 8, XB: 10, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 10, YB: 10},
	}
	healthy := func(x, y int) float64 { return 1 }
	res, err := meda.Synthesize(rj, healthy, meda.DefaultSynthOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("states: %d\n", res.Stats.States)
	fmt.Printf("expected cycles: %.0f\n", res.Value)
	fmt.Printf("first action: %v\n", res.Policy[rj.Start])
	// Output:
	// states: 67
	// expected cycles: 7
	// first action: aNE
}

// ExampleParseQuery parses the paper's synthesis query.
func ExampleParseQuery() {
	q, err := meda.ParseQuery("Rmin=? [ G !hazard & F goal ]")
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output:
	// Rmin=? [ G !hazard & F goal ]
}

// ExampleParseAssay parses a protocol written in the assay language and
// places it with the planner.
func ExampleParseAssay() {
	const protocol = `
assay demo
a = dis 16
b = dis 16
m = mix a b
out m
`
	g, err := meda.ParseAssay(strings.NewReader(protocol))
	if err != nil {
		panic(err)
	}
	cfg := meda.DefaultChipConfig()
	plan, err := meda.CompileGraph(g, cfg.W, cfg.H)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d operations, %d routing jobs\n", g.Name, len(g.Ops), plan.TotalJobs())
	// Output:
	// demo: 4 operations, 5 routing jobs
}

// ExampleNewRunner executes a benchmark bioassay with adaptive routing.
func ExampleNewRunner() {
	src := meda.NewSource(2021)
	cfg := meda.DefaultChipConfig()
	chip, err := meda.NewChip(cfg, src.Split("chip"))
	if err != nil {
		panic(err)
	}
	plan, err := meda.CompileBenchmark(meda.CovidRAT, cfg, 16)
	if err != nil {
		panic(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), chip, meda.NewAdaptiveRouter(), src.Split("sim"))
	exec, err := runner.Execute(plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("success: %v\n", exec.Success)
	// Output:
	// success: true
}
